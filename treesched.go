package treesched

import (
	"context"
	"io"
	"math/rand"

	"treesched/internal/dataset"
	"treesched/internal/exact"
	"treesched/internal/forest"
	"treesched/internal/frontal"
	"treesched/internal/machine"
	"treesched/internal/pebble"
	"treesched/internal/portfolio"
	"treesched/internal/sched"
	"treesched/internal/service"
	"treesched/internal/spm"
	"treesched/internal/traversal"
	"treesched/internal/tree"
)

// Core model types, re-exported from the implementation packages.
type (
	// Tree is an in-tree task graph with processing times w, execution-file
	// sizes n and output-file sizes f per node.
	Tree = tree.Tree
	// Builder assembles a Tree incrementally.
	Builder = tree.Builder
	// WeightSpec controls random node weights in the tree generators.
	WeightSpec = tree.WeightSpec
	// Traversal is a sequential order together with its peak memory.
	Traversal = traversal.Result
	// Schedule maps every node to a start time and a processor.
	Schedule = sched.Schedule
	// Heuristic is a named parallel scheduling algorithm.
	Heuristic = sched.Heuristic
	// Splitting is the subtree decomposition computed by SplitSubtrees.
	Splitting = sched.Splitting
	// Pattern is a symmetric sparse-matrix sparsity pattern.
	Pattern = spm.Pattern
	// Perm is a fill-reducing elimination ordering.
	Perm = spm.Perm
	// Instance is one assembly tree of the synthetic evaluation collection.
	Instance = dataset.Instance
	// DenseMatrix is the dense symmetric matrix type of the numeric engine.
	DenseMatrix = frontal.Dense
	// Factorizer performs numeric multifrontal Cholesky factorizations
	// under arbitrary tree traversals.
	Factorizer = frontal.Factorizer
	// FactorResult is the outcome of a numeric factorization: the factor
	// and the measured peak live entries.
	FactorResult = frontal.Result
	// HeuristicID is the typed identifier of a scheduling heuristic.
	HeuristicID = sched.HeuristicID
	// MachineModel describes the machine to schedule on: p related
	// processors with per-processor speeds (task i runs in w_i/s_k time on
	// processor k). Build one with UniformMachine or ParseMachineSpec and
	// pass it via ScheduleOptions.Machine, PortfolioOptions, or
	// ForestConfig.Machine; the paper's identical-processor model is the
	// uniform case.
	MachineModel = machine.Model
	// ScheduleOptions selects heuristics and parameters for a scheduling
	// run (used by the service and batch callers).
	ScheduleOptions = sched.Options
	// Server is the treeschedd scheduling-as-a-service HTTP server.
	Server = service.Server
	// ServerConfig parameterizes a Server (worker pool, cache, limits).
	ServerConfig = service.Config
	// ScheduleRequest is one job submitted to the scheduling service.
	ScheduleRequest = service.Request
	// ScheduleResponse is the service's answer to one ScheduleRequest.
	ScheduleResponse = service.Response
	// HeuristicResult is one heuristic's outcome within a ScheduleResponse.
	HeuristicResult = service.HeuristicResult
	// ScheduleBounds carries the bi-objective lower bounds of an instance.
	ScheduleBounds = service.Bounds
	// Objective is a typed selection policy for portfolio runs; build one
	// with MinMakespan, MinMemory, MakespanUnderMemCap, MemoryUnderDeadline,
	// Weighted or ParseObjective.
	Objective = portfolio.Objective
	// PortfolioOptions parameterizes RunPortfolio (machine size, candidate
	// heuristics, memory-cap factor, racing parallelism).
	PortfolioOptions = portfolio.Options
	// PortfolioCandidate is one heuristic's outcome in a portfolio race.
	PortfolioCandidate = portfolio.Candidate
	// PortfolioResult is the outcome of a portfolio race: all candidates,
	// the Pareto frontier and the objective-selected winner.
	PortfolioResult = portfolio.Result
	// ForestJob is one line of a forest trace: a tree arriving at a point
	// in time with an optional per-job planning directive.
	ForestJob = forest.Job
	// ForestConfig parameterizes a forest run (machine size, global
	// memory cap, admission policy, default planning heuristic).
	ForestConfig = forest.Config
	// ForestPolicy orders the forest admission queue; build one with
	// FIFO, SJFByWork, SmallestMemFirst, WeightedFair or ParsePolicy.
	ForestPolicy = forest.Policy
	// ForestResult is the outcome of a forest run: per-job results in
	// trace order plus the aggregate summary.
	ForestResult = forest.Result
	// ForestJobResult is one job's outcome within a ForestResult.
	ForestJobResult = forest.JobResult
	// ForestSummary aggregates one forest run (makespan, utilization,
	// peak resident memory, latency/stretch statistics).
	ForestSummary = forest.Summary
	// ForestGenConfig parameterizes the deterministic forest trace
	// generator.
	ForestGenConfig = forest.GenConfig
)

// None marks the absence of a node (the parent of a root).
const None = tree.None

// PebbleWeights is the unit-cost pebble-game model of the paper's
// complexity section (f=1, n=0, w=1).
var PebbleWeights = tree.PebbleWeights

// ErrTreeTooLarge is wrapped by DecodeTreeMax when the declared node
// count exceeds the given limit.
var ErrTreeTooLarge = tree.ErrTooLarge

// NewTree builds a tree from a parent vector (None for the root) and the
// per-node weights.
func NewTree(parent []int, w []float64, n, f []int64) (*Tree, error) {
	return tree.New(parent, w, n, f)
}

// DecodeTree parses the textual tree format (see Tree.Encode). The input
// is trusted: the declared node count is allocated as-is. For untrusted
// inputs use DecodeTreeMax.
func DecodeTree(r io.Reader) (*Tree, error) { return tree.Decode(r) }

// DecodeTreeMax is DecodeTree with a cap on the declared node count,
// checked before any count-sized allocation; exceeding it returns an
// error wrapping ErrTreeTooLarge. Use it on untrusted inputs, where a
// tiny hostile header line could otherwise demand arbitrary memory.
func DecodeTreeMax(r io.Reader, maxNodes int) (*Tree, error) { return tree.DecodeMax(r, maxNodes) }

// TreeHash returns the canonical SHA-256 hash of t (hex), the cache key
// of the scheduling service. Trees with identical parent/w/n/f vectors
// hash equally regardless of how they were constructed or encoded.
func TreeHash(t *Tree) string { return t.CanonicalHash() }

// RandomTree generates a random tree by uniform attachment.
func RandomTree(rng *rand.Rand, n int, ws WeightSpec) *Tree {
	return tree.RandomAttachment(rng, n, ws)
}

// Sequential traversals (single processor).

// BestPostOrder returns the memory-optimal postorder traversal (Liu 1986),
// the sequential memory reference M_seq of the paper's evaluation.
func BestPostOrder(t *Tree) Traversal { return traversal.BestPostOrder(t) }

// OptimalTraversal returns a peak-memory-optimal sequential traversal
// (Liu 1987), which may beat every postorder.
func OptimalTraversal(t *Tree) Traversal { return traversal.Optimal(t) }

// SequentialPeakMemory evaluates the peak memory of executing order
// sequentially; order must be a topological order of t.
func SequentialPeakMemory(t *Tree, order []int) (int64, error) {
	return traversal.PeakMemory(t, order)
}

// Parallel heuristics (paper §5).

// ParSubtrees runs the memory-focused two-phase heuristic (paper Alg. 1):
// a (p+1)-approximation for memory, a p-approximation for makespan.
func ParSubtrees(t *Tree, p int) (*Schedule, error) { return sched.ParSubtrees(t, p) }

// ParSubtreesOptim is ParSubtrees with LPT allocation of all split
// subtrees, trading a little memory for makespan.
func ParSubtreesOptim(t *Tree, p int) (*Schedule, error) { return sched.ParSubtreesOptim(t, p) }

// ParInnerFirst approximates a postorder in parallel: ready inner nodes
// first, then leaves in optimal-postorder order. (2-1/p)-approximation for
// makespan; unbounded memory ratio in the worst case.
func ParInnerFirst(t *Tree, p int) (*Schedule, error) { return sched.ParInnerFirst(t, p) }

// ParDeepestFirst processes deepest nodes (by w-weighted root distance)
// first, targeting the critical path. (2-1/p)-approximation for makespan;
// unbounded memory ratio in the worst case.
func ParDeepestFirst(t *Tree, p int) (*Schedule, error) { return sched.ParDeepestFirst(t, p) }

// MemCapped schedules under a hard peak-memory cap by activating tasks in
// optimal-postorder order (the paper's future-work proposal). It fails if
// cap is below the sequential requirement.
func MemCapped(t *Tree, p int, cap int64) (*Schedule, error) { return sched.MemCapped(t, p, cap) }

// MemCappedBooking schedules under a hard peak-memory cap with
// deepest-first admission: memory not booked for the reference traversal's
// future needs is lent to out-of-order tasks, recovering most of the
// parallelism lost by MemCapped while never deadlocking or exceeding cap.
func MemCappedBooking(t *Tree, p int, cap int64) (*Schedule, error) {
	return sched.MemCappedBooking(t, p, cap)
}

// SplitSubtrees exposes the makespan-optimal subtree decomposition used by
// ParSubtrees (paper Alg. 2, Lemma 1).
func SplitSubtrees(t *Tree, p int) Splitting { return sched.SplitSubtrees(t, p) }

// Precompute is the shared per-tree scheduling context: Liu's
// memory-optimal postorder, M_seq, depths and the per-heuristic priority
// rankings, computed once per tree and safe for concurrent use. Build one
// with NewPrecompute when scheduling the same tree more than once (several
// heuristics, repeated calls, different processor counts) and call its
// methods (ParInnerFirst, MemCapped, Run, …) instead of the package-level
// functions, which construct a throwaway context per call.
type Precompute = sched.Precompute

// NewPrecompute builds the shared scheduling context for t. O(n log n),
// amortized across every schedule subsequently produced from it.
func NewPrecompute(t *Tree) *Precompute { return sched.NewPrecompute(t) }

// PartitionedInnerFirst is the throughput tier of ParInnerFirst for huge
// trees (~10⁶ nodes): it cuts t at the σ-front into partitions independent
// subtree work-packages, fills each package's schedule in linear time
// without the global rank heap, and stitches the results
// deterministically. Several times faster to construct than ParInnerFirst
// at partitions ≥ 8, at the price of a worse makespan (the packages do
// not interleave); see EXPERIMENTS.md E20. partitions ≤ 1 is sequential
// ParInnerFirst. Reuse the Precompute method when scheduling the same
// tree repeatedly.
func PartitionedInnerFirst(t *Tree, p, partitions int) (*Schedule, error) {
	return sched.NewPrecompute(t).PartitionedInnerFirst(p, partitions)
}

// PrecomputeCache is a size-aware LRU for sharing Precompute contexts
// across requests, with weighted admission: entries above 1/8 of the byte
// budget must be offered twice before they displace the resident working
// set. It backs treeschedd's cross-request cache and is safe for
// concurrent use.
type PrecomputeCache = sched.PrecomputeCache

// PrecomputeCacheStats is a point-in-time snapshot of a PrecomputeCache.
type PrecomputeCacheStats = sched.PrecomputeCacheStats

// NewPrecomputeCache builds a PrecomputeCache holding at most budgetBytes
// of Precompute state (estimated via Precompute.SizeBytes). It panics if
// budgetBytes ≤ 0.
func NewPrecomputeCache(budgetBytes int64) *PrecomputeCache {
	return sched.NewPrecomputeCache(budgetBytes)
}

// Evaluate validates s against t and returns its makespan and exact
// simulated peak memory in one pooled pass — the cheapest way to measure
// a schedule (schedules produced by this module's schedulers carry an
// inline-tracked peak and evaluate in O(n) without the event replay).
func Evaluate(t *Tree, s *Schedule) (makespan float64, peak int64, err error) {
	return sched.Evaluate(t, s)
}

// Heuristics returns the paper's four heuristics in Table 1 order.
func Heuristics() []Heuristic { return sched.Heuristics() }

// HeuristicByName resolves a heuristic by name ("ParSubtrees",
// "ParSubtreesOptim", "ParInnerFirst", "ParDeepestFirst", and the extras
// "ParInnerFirstArbitrary", "Sequential", "OptimalSequential").
func HeuristicByName(name string) (Heuristic, bool) { return sched.ByName(name) }

// ParseHeuristic resolves a heuristic wire name to its typed ID for use in
// ScheduleOptions; it additionally recognizes the memory-capped
// schedulers ("MemCapped", "MemCappedBooking"). Unknown names yield an
// error enumerating every valid name.
func ParseHeuristic(name string) (HeuristicID, error) { return sched.ParseHeuristic(name) }

// Portfolio scheduling (see internal/portfolio): race heuristics
// concurrently, compute the Pareto frontier, select by objective.

// RunPortfolio races the candidate heuristics of opts (default: the
// paper's four plus the Sequential baseline) concurrently over t and
// selects a winner under obj. The shared precomputation (the
// memory-optimal postorder and M_seq) runs once; each candidate is
// individually panic-contained; ctx cancellation abandons unstarted
// candidates.
func RunPortfolio(ctx context.Context, t *Tree, obj Objective, opts PortfolioOptions) (*PortfolioResult, error) {
	return portfolio.Run(ctx, t, obj, opts)
}

// ParetoFrontier returns the indices of the Pareto-optimal candidates for
// the (makespan, peak memory) bi-criteria minimization, in ascending
// makespan order with deterministic ID tie-breaking.
func ParetoFrontier(cands []PortfolioCandidate) []int { return portfolio.Frontier(cands) }

// DefaultPortfolioCandidates returns the default racing set: the paper's
// four heuristics plus the Sequential baseline.
func DefaultPortfolioCandidates() []HeuristicID { return portfolio.DefaultCandidates() }

// MinMakespan selects the fastest candidate.
func MinMakespan() Objective { return portfolio.MinMakespan() }

// MinMemory selects the most memory-frugal candidate.
func MinMemory() Objective { return portfolio.MinMemory() }

// MakespanUnderMemCap selects the fastest candidate with peak memory at
// most factor × M_seq.
func MakespanUnderMemCap(factor float64) Objective { return portfolio.MakespanUnderMemCap(factor) }

// MemoryUnderDeadline selects the most memory-frugal candidate with
// makespan at most d × the makespan lower bound.
func MemoryUnderDeadline(d float64) Objective { return portfolio.MemoryUnderDeadline(d) }

// Weighted minimizes alpha·(makespan/LB) + (1−alpha)·(memory/M_seq).
func Weighted(alpha float64) Objective { return portfolio.Weighted(alpha) }

// ParseObjective parses the objective wire syntax ("min_makespan",
// "min_memory", "makespan_under_memcap:F", "memory_under_deadline:D",
// "weighted:A"), as accepted by the service's "objective" field and the
// CLI's -objective flag.
func ParseObjective(s string) (Objective, error) { return portfolio.ParseObjective(s) }

// Exact solving (see internal/exact): branch-and-bound to proven
// optimality on small trees — the ground-truth oracle the heuristics are
// differentially tested against, and an anytime portfolio candidate
// (HeuristicID "Exact").

// ExactResult is the outcome of an exact solve: the best schedule found,
// its measures, whether optimality was proven within the node budget, and
// the search statistics.
type ExactResult = exact.Result

// MaxExactNodes is the largest tree the exact solver accepts.
const MaxExactNodes = exact.MaxSolveNodes

// DefaultExactNodeBudget is the search budget used when SolveExact is
// called with budget 0, in explored branch-and-bound decision nodes
// (never wall-clock time, so solves are reproducible everywhere).
const DefaultExactNodeBudget = exact.DefaultNodeBudget

// ErrExactInfeasible is wrapped by SolveExact when no schedule of any
// kind can respect the memory cap (the cap is below the optimal
// sequential traversal's peak, the provable floor).
var ErrExactInfeasible = exact.ErrInfeasible

// SolveExact computes a minimum-makespan schedule of t on m under the
// global memory cap (math.MaxInt64 for none), proving optimality when the
// branch-and-bound completes within budget nodes (0 means
// DefaultExactNodeBudget) and returning the best schedule found
// otherwise. Trees above MaxExactNodes are rejected.
func SolveExact(t *Tree, m *MachineModel, cap int64, budget int64) (*ExactResult, error) {
	return exact.Solve(t, m, cap, budget)
}

// ParseExactBudget parses a node-budget spec: a positive integer with an
// optional k/M/G suffix ("500k", "2M"), as accepted by the treesched
// CLI's -budget flag.
func ParseExactBudget(s string) (int64, error) { return exact.ParseBudget(s) }

// Online multi-tenant forest scheduling (see internal/forest): stream
// tree-jobs onto one shared machine under a global memory cap.

// RunForest simulates a job trace on one shared machine: each job is
// planned standalone (heuristic or portfolio race per job), and the
// discrete-event engine interleaves all admitted jobs at task granularity
// under cross-tree memory booking, so resident memory never exceeds the
// cap and admission never deadlocks. Deterministic for a fixed (trace,
// config).
func RunForest(ctx context.Context, jobs []ForestJob, cfg ForestConfig) (*ForestResult, error) {
	return forest.Run(ctx, jobs, cfg)
}

// FIFO admits forest jobs strictly in arrival order (no backfilling).
func FIFO() ForestPolicy { return forest.FIFO() }

// SJFByWork admits the queued job with the least total work first.
func SJFByWork() ForestPolicy { return forest.SJFByWork() }

// SmallestMemFirst admits the queued job with the smallest sequential
// peak (M_seq) first.
func SmallestMemFirst() ForestPolicy { return forest.SmallestMemFirst() }

// WeightedFair admits by weighted finish tag arrival + work/weight.
func WeightedFair() ForestPolicy { return forest.WeightedFair() }

// ParsePolicy resolves an admission-policy wire name ("fifo", "sjf",
// "smallest_mseq", "weighted_fair").
func ParsePolicy(s string) (ForestPolicy, error) { return forest.ParsePolicy(s) }

// DecodeForestTrace parses an NDJSON forest trace (one ForestJob per
// line) with everything unlimited; servers should bound inputs with
// forest.DecodeLimits instead.
func DecodeForestTrace(r io.Reader) ([]ForestJob, error) {
	return forest.DecodeTrace(r, forest.DecodeLimits{})
}

// EncodeForestTrace writes jobs as an NDJSON trace readable by
// DecodeForestTrace and by the service's /v1/forest endpoint.
func EncodeForestTrace(w io.Writer, jobs []ForestJob) error { return forest.EncodeTrace(w, jobs) }

// GenForestTrace synthesizes a deterministic job trace (Poisson or bursty
// arrivals over mixed tree families), as used by `treegen -forest` and
// the forest benchmark suite.
func GenForestTrace(cfg ForestGenConfig) ([]ForestJob, error) { return forest.GenTrace(cfg) }

// Scheduling service (see cmd/treeschedd and internal/service).

// NewServer builds the scheduling-as-a-service HTTP server. Mount
// Server.Handler on an http.Server and Close the Server after shutdown.
func NewServer(cfg ServerConfig) *Server { return service.New(cfg) }

// Schedule analysis.

// PeakMemory returns the exact peak memory of schedule s on t, from the
// discrete-event simulation of file lifetimes.
func PeakMemory(t *Tree, s *Schedule) int64 { return sched.PeakMemory(t, s) }

// MakespanLowerBound returns max(total work / p, critical path).
func MakespanLowerBound(t *Tree, p int) float64 { return sched.MakespanLowerBound(t, p) }

// Machine models (heterogeneous / related processors).

// UniformMachine returns the paper's machine: p identical unit-speed
// processors. Every scheduler reduces byte-for-byte to its historical
// behavior on a uniform machine.
func UniformMachine(p int) *MachineModel { return machine.Uniform(p) }

// NewMachine builds a machine model from per-processor speeds (every
// speed a positive finite number).
func NewMachine(speeds []float64) (*MachineModel, error) { return machine.New(speeds) }

// ParseMachineSpec parses the textual machine spec accepted everywhere a
// machine can be named (the service's "machine" field and query
// parameter, the -machine CLI flags): a bare processor count ("4") or
// COUNTxSPEED groups joined by '+' ("2x1.0+2x0.5" — 2 unit-speed plus 2
// half-speed processors).
func ParseMachineSpec(spec string) (*MachineModel, error) { return machine.ParseSpec(spec) }

// MakespanLowerBoundOn is the speed-scaled makespan lower bound on an
// explicit machine model: max(ΣW / Σ speeds, critical path / s_max).
func MakespanLowerBoundOn(t *Tree, m *MachineModel) float64 {
	return sched.MakespanLowerBoundOn(t, m)
}

// MemoryLowerBound returns the sequential memory reference M_seq (best
// postorder peak).
func MemoryLowerBound(t *Tree) int64 { return sched.MemoryLowerBound(t) }

// Sparse-matrix substrate: synthesizing assembly trees.

// Grid2D returns the 5-point-stencil pattern of an nx × ny grid.
func Grid2D(nx, ny int) *Pattern { return spm.Grid2D(nx, ny) }

// Grid3D returns the 7-point-stencil pattern of an nx × ny × nz grid.
func Grid3D(nx, ny, nz int) *Pattern { return spm.Grid3D(nx, ny, nz) }

// RandomSymmetric returns a connected random pattern with ~avgDeg
// neighbors per vertex.
func RandomSymmetric(rng *rand.Rand, n int, avgDeg float64) *Pattern {
	return spm.RandomSym(rng, n, avgDeg)
}

// NestedDissection returns a nested-dissection ordering of p.
func NestedDissection(p *Pattern) Perm { return spm.NestedDissection(p) }

// MinimumDegree returns a minimum-degree ordering of p.
func MinimumDegree(p *Pattern) Perm { return spm.MinimumDegree(p) }

// AssemblyTree runs the multifrontal pipeline — elimination tree, symbolic
// factorization, relaxed amalgamation with at most maxEta columns per node
// — and returns the task tree weighted with the paper's cost model (§6.2).
func AssemblyTree(p *Pattern, perm Perm, maxEta int) (*Tree, error) {
	return spm.AssemblyTree(p, perm, maxEta)
}

// EvaluationCollection builds the deterministic synthetic tree collection
// standing in for the paper's 608 assembly trees. scale is one of "quick",
// "standard", "full".
func EvaluationCollection(scale string, seed int64) ([]Instance, error) {
	s := dataset.Standard
	switch scale {
	case "quick":
		s = dataset.Quick
	case "full":
		s = dataset.Full
	}
	return dataset.Collection(s, seed)
}

// Numeric multifrontal engine.

// NewFactorizer runs the symbolic analysis of the SPD matrix a (with the
// sparsity of p) under perm, ready to factorize numerically under any tree
// traversal. The engine's measured peak memory matches the abstract model
// entry for entry.
func NewFactorizer(p *Pattern, perm Perm, a *DenseMatrix) (*Factorizer, error) {
	return frontal.NewFactorizer(p, perm, a)
}

// SPDMatrix builds a random symmetric positive-definite matrix with the
// sparsity pattern of p (strictly diagonally dominant).
func SPDMatrix(rng *rand.Rand, p *Pattern) *DenseMatrix { return frontal.SPDFromPattern(rng, p) }

// Complexity gadgets (paper §4).

// ForkTree builds the Figure 3 worst case for ParSubtrees' makespan.
func ForkTree(p, k int) *Tree { return pebble.ForkTree(p, k) }

// JoinChainTree builds the Figure 4 worst case for ParInnerFirst's memory.
func JoinChainTree(p, k int) *Tree { return pebble.JoinChainTree(p, k) }

// SpiderTree builds the Figure 5 worst case for ParDeepestFirst's memory.
func SpiderTree(m, minChain int) *Tree { return pebble.SpiderTree(m, minChain) }
