// Package treesched schedules tree-shaped task graphs on shared-memory
// parallel machines, optimizing both makespan and peak memory. It is a
// complete implementation of
//
//	L. Marchal, O. Sinnen, F. Vivien,
//	"Scheduling tree-shaped task graphs to minimize memory and makespan",
//	INRIA Research Report RR-8082 (2012) / IPDPS 2013.
//
// # Model
//
// Tasks form an in-tree: every node i has a processing time w_i, an
// execution file of size n_i and an output file of size f_i consumed by
// its parent. Executing i requires all children's output files, n_i and
// f_i to be resident; completing i frees the children files and n_i, while
// f_i stays resident until the parent completes. Such trees arise as the
// assembly (elimination) trees of multifrontal sparse matrix factorization.
//
// # What the package provides
//
//   - Sequential traversals minimizing peak memory: the optimal postorder
//     (Liu 1986) and Liu's exact optimal traversal (Liu 1987).
//   - The paper's four parallel heuristics: ParSubtrees, ParSubtreesOptim
//     (memory-focused, two-phase), ParInnerFirst (parallel postorder) and
//     ParDeepestFirst (critical-path-focused), plus a memory-capped
//     scheduler realizing the paper's future-work proposal.
//   - A discrete-event simulator computing the exact peak memory of any
//     schedule, schedule validation, and the bi-objective lower bounds.
//   - A sparse-matrix substrate (patterns, fill-reducing orderings,
//     elimination trees, symbolic factorization, relaxed amalgamation)
//     that synthesizes realistic assembly trees, standing in for the
//     University of Florida collection used by the paper.
//   - The complexity gadgets of the paper's Theorems 1 and 2 and Figures
//     3-5, and an experiment harness regenerating Table 1 and Figures 6-8.
//   - A portfolio scheduler (internal/portfolio): races a candidate set of
//     heuristics concurrently over one tree with shared precomputation,
//     computes the Pareto frontier of (makespan, peak memory), and selects
//     a winner under a typed objective (min-makespan, min-memory,
//     makespan-under-memory-cap, memory-under-deadline, weighted).
//   - A scheduling service, treeschedd (cmd/treeschedd, internal/service):
//     an HTTP JSON API with a worker pool, an LRU result cache keyed by a
//     canonical tree hash, a streaming NDJSON batch endpoint, and a
//     /v1/portfolio endpoint exposing the portfolio scheduler.
//   - An online multi-tenant forest scheduler (internal/forest): a
//     discrete-event engine that streams tree-jobs from a trace onto one
//     shared machine under a global memory cap, planning each job with
//     the heuristics or the portfolio and interleaving jobs with
//     cross-tree memory booking (no overcap, no deadlock) under pluggable
//     admission policies; exposed as /v1/forest, treesched -forest and
//     treegen -forest.
//   - An explicit machine model (internal/machine): per-processor speeds
//     for heterogeneous (related-machines) scheduling — task i runs in
//     w_i/s_k time on processor k — threaded through every scheduler,
//     the portfolio, the forest engine and the service ("machine" field
//     and query parameter, -machine CLI flags). Uniform machines (all
//     speeds 1) reduce byte-for-byte to the paper's model.
//
// See the examples directory for runnable entry points, EXPERIMENTS.md
// for the reproduction results, and README.md for CLI and API usage.
package treesched
