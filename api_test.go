package treesched_test

import (
	"bytes"
	"math/rand"
	"testing"

	"treesched"
)

// TestEndToEnd exercises the public API the way the quickstart example
// does: build a tree, traverse sequentially, schedule with every heuristic,
// measure both objectives against the lower bounds.
func TestEndToEnd(t *testing.T) {
	var b treesched.Builder
	root := b.Add(treesched.None, 2, 1, 0)
	left := b.Add(root, 3, 2, 10)
	right := b.Add(root, 4, 2, 12)
	b.Add(left, 1, 0, 5)
	b.Add(left, 1, 0, 6)
	b.Add(right, 2, 0, 7)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	po := treesched.BestPostOrder(tr)
	opt := treesched.OptimalTraversal(tr)
	if opt.Peak > po.Peak {
		t.Fatalf("optimal %d worse than postorder %d", opt.Peak, po.Peak)
	}
	if got, err := treesched.SequentialPeakMemory(tr, po.Order); err != nil || got != po.Peak {
		t.Fatalf("SequentialPeakMemory = %d, %v; want %d", got, err, po.Peak)
	}
	for _, h := range treesched.Heuristics() {
		s, err := h.Run(tr, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(tr); err != nil {
			t.Fatalf("%s: %v", h.Name, err)
		}
		if ms := s.Makespan(tr); ms < treesched.MakespanLowerBound(tr, 2)-1e-9 {
			t.Fatalf("%s beats the lower bound", h.Name)
		}
		if m := treesched.PeakMemory(tr, s); m < treesched.MemoryLowerBound(tr) {
			t.Fatalf("%s memory %d below sequential optimum", h.Name, m)
		}
	}
}

func TestAssemblyPipelineViaFacade(t *testing.T) {
	g := treesched.Grid2D(10, 10)
	tr, err := treesched.AssemblyTree(g, treesched.NestedDissection(g), 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := treesched.ParSubtrees(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(tr); err != nil {
		t.Fatal(err)
	}
	md := treesched.MinimumDegree(g)
	if _, err := treesched.AssemblyTree(g, md, 1); err != nil {
		t.Fatal(err)
	}
}

func TestTreeEncodingRoundTripViaFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := treesched.RandomTree(rng, 40, treesched.PebbleWeights)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := treesched.DecodeTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip size %d != %d", back.Len(), tr.Len())
	}
}

func TestGadgetFacades(t *testing.T) {
	if tr := treesched.ForkTree(4, 3); tr.Len() != 13 {
		t.Errorf("ForkTree size %d", tr.Len())
	}
	if tr := treesched.JoinChainTree(3, 5); tr.Len() != 2*5+4*2 {
		t.Errorf("JoinChainTree size %d", tr.Len())
	}
	if tr := treesched.SpiderTree(4, 3); tr.NumLeaves() != 5 {
		t.Errorf("SpiderTree leaves %d", tr.NumLeaves())
	}
}

func TestMemCappedFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := treesched.RandomTree(rng, 80, treesched.WeightSpec{WMin: 1, WMax: 4, FMin: 1, FMax: 9})
	mseq := treesched.MemoryLowerBound(tr)
	s, err := treesched.MemCapped(tr, 4, 2*mseq)
	if err != nil {
		t.Fatal(err)
	}
	if m := treesched.PeakMemory(tr, s); m > 2*mseq {
		t.Fatalf("cap violated: %d > %d", m, 2*mseq)
	}
}

func TestPartitionedAndPrecomputeCacheFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := treesched.RandomTree(rng, 300, treesched.WeightSpec{WMin: 1, WMax: 4, FMin: 1, FMax: 9})
	s, err := treesched.PartitionedInnerFirst(tr, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(tr); err != nil {
		t.Fatal(err)
	}

	pcc := treesched.NewPrecomputeCache(1 << 20)
	pc := treesched.NewPrecompute(tr)
	if !pcc.Add("k", pc) {
		t.Fatal("entry within budget not admitted")
	}
	got, ok := pcc.Get("k")
	if !ok || got != pc {
		t.Fatalf("Get = %p, %v; want the added context", got, ok)
	}
	st := pcc.Stats()
	if st.Hits != 1 || st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("stats = %+v; want 1 hit, 1 entry, positive bytes", st)
	}
}

func TestEvaluationCollectionFacade(t *testing.T) {
	insts, err := treesched.EvaluationCollection("quick", 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) == 0 {
		t.Fatal("empty collection")
	}
	if _, ok := treesched.HeuristicByName("ParDeepestFirst"); !ok {
		t.Fatal("heuristic lookup failed")
	}
}

func TestSplitSubtreesFacade(t *testing.T) {
	tr := treesched.ForkTree(2, 6)
	sp := treesched.SplitSubtrees(tr, 2)
	if len(sp.SubtreeRoots) == 0 {
		t.Fatal("no subtrees")
	}
	if sp.PredictedMakespan <= 0 {
		t.Fatal("no predicted makespan")
	}
}

func TestFacadeGridAndGenerators(t *testing.T) {
	g3 := treesched.Grid3D(3, 3, 3)
	if g3.Len() != 27 {
		t.Fatalf("Grid3D size %d", g3.Len())
	}
	rng := rand.New(rand.NewSource(4))
	rs := treesched.RandomSymmetric(rng, 50, 3)
	tr, err := treesched.AssemblyTree(rs, treesched.MinimumDegree(rs), 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("empty assembly tree")
	}
	s, err := treesched.MemCappedBooking(tr, 2, treesched.MemoryLowerBound(tr))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(tr); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluationCollectionScales(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the standard collection")
	}
	std, err := treesched.EvaluationCollection("standard", 1)
	if err != nil {
		t.Fatal(err)
	}
	quick, err := treesched.EvaluationCollection("quick", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(std) <= len(quick) {
		t.Fatalf("standard (%d) not larger than quick (%d)", len(std), len(quick))
	}
}
