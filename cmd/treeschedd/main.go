// Command treeschedd serves the treesched library over HTTP: clients POST
// tree task graphs as JSON and receive per-heuristic makespan, simulated
// peak memory and the paper's lower bounds. See internal/service for the
// API and README.md for curl examples.
//
// Usage:
//
//	treeschedd -addr :8080
//	treeschedd -addr :8080 -workers 16 -cache 4096 -max-body 16777216
//	treeschedd -addr :8080 -log json                   # structured request logs on stderr
//	treeschedd -addr :8080 -debug-addr 127.0.0.1:6060  # net/http/pprof, loopback only
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"treesched/internal/resilience/chaos"
	"treesched/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "scheduling worker pool size (default GOMAXPROCS)")
		cacheSize = flag.Int("cache", service.DefaultCacheSize, "LRU result cache entries (negative disables)")
		pcBytes   = flag.Int64("precompute-cache-bytes", service.DefaultPrecomputeCacheBytes, "byte budget of the cross-request Precompute cache (negative disables)")
		maxParts  = flag.Int("max-partitions", service.DefaultMaxPartitions, "max partitions field per request")
		maxBody   = flag.Int64("max-body", service.DefaultMaxBodyBytes, "max request body / batch line bytes")
		maxNodes  = flag.Int("max-nodes", service.DefaultMaxNodes, "max tree size in nodes")
		maxProcs  = flag.Int("max-procs", service.DefaultMaxProcs, "max processor count per request")
		drain     = flag.Duration("drain", 30*time.Second, "graceful shutdown timeout")
		logMode   = flag.String("log", "text", "per-request structured logs on stderr: text|json|off")
		debugAddr = flag.String("debug-addr", "", "optional listen address for the debug mux (net/http/pprof + /debug/flight); keep it loopback-only")

		flightSize   = flag.Int("flight-size", service.DefaultFlightSize, "flight recorder ring capacity (retained requests)")
		flightSlow   = flag.Duration("flight-slow", service.DefaultFlightSlow, "latency above which the flight recorder always keeps a request")
		flightSample = flag.Int("flight-sample", service.DefaultFlightSampleEvery, "keep 1 in N fast successful requests in the flight recorder")
		listMetrics  = flag.Bool("list-metrics", false, "print every registered metric family name and exit")

		timeout         = flag.Duration("timeout", 0, "server-side time budget per request (0 = none); exhausted budgets answer 503")
		batchWrite      = flag.Duration("batch-write-timeout", service.DefaultBatchWriteTimeout, "per-response-line write deadline of the batch endpoint (must be > 0)")
		queueDepth      = flag.Int("queue-depth", 0, "admission window: max admitted unfinished jobs (default 16×workers)")
		queueTarget     = flag.Duration("queue-target", service.DefaultQueueTarget, "acceptable queue sojourn before shedding begins (negative disables delay shedding)")
		breakerFailures = flag.Int("breaker-failures", service.DefaultBreakerFailures, "consecutive Exact budget exhaustions that trip its circuit breaker")
		breakerCooldown = flag.Duration("breaker-cooldown", service.DefaultBreakerCooldown, "how long the Exact breaker stays open before a half-open probe")
		chaosSpec       = flag.String("chaos", "", "deterministic fault injection spec, e.g. seed=42,latency=0.5:5ms,panic=0.1,cancel=0.05,evict=0.2 (testing only)")
	)
	var slos sloFlags
	flag.Var(&slos, "slo", "per-endpoint SLO as endpoint:latency:objective, e.g. /v1/schedule:250ms:99.9 (repeatable; latency 0 = availability-only)")
	flag.Parse()

	if *batchWrite <= 0 {
		fmt.Fprintf(os.Stderr, "treeschedd: bad -batch-write-timeout %s (must be > 0)\n", *batchWrite)
		os.Exit(2)
	}
	injector, err := chaos.Parse(*chaosSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "treeschedd: bad -chaos: %v\n", err)
		os.Exit(2)
	}
	if injector != nil {
		log.Printf("treeschedd: CHAOS INJECTION ACTIVE (%s) — testing only", injector)
	}

	var logger *slog.Logger
	switch *logMode {
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "off":
	default:
		fmt.Fprintf(os.Stderr, "treeschedd: bad -log %q (want text, json or off)\n", *logMode)
		os.Exit(2)
	}

	svc := service.New(service.Config{
		Workers:              *workers,
		CacheSize:            *cacheSize,
		PrecomputeCacheBytes: *pcBytes,
		MaxPartitions:        *maxParts,
		MaxBodyBytes:         *maxBody,
		MaxNodes:             *maxNodes,
		MaxProcs:             *maxProcs,
		SLOs:                 slos,
		FlightSize:           *flightSize,
		FlightSlow:           *flightSlow,
		FlightSampleEvery:    *flightSample,
		Logger:               logger,
		RequestTimeout:       *timeout,
		BatchWriteTimeout:    *batchWrite,
		QueueDepth:           *queueDepth,
		QueueTarget:          *queueTarget,
		BreakerFailures:      *breakerFailures,
		BreakerCooldown:      *breakerCooldown,
		Chaos:                injector,
	})

	// -list-metrics prints the registered family names — the CI drift
	// gate diffs this list against a live /metrics scrape, so a family
	// can't be added without showing up in the snapshot the gate checks.
	if *listMetrics {
		for _, name := range svc.MetricFamilies() {
			fmt.Println(name)
		}
		return
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("treeschedd: listening on %s (workers=%d cache=%d)", *addr, svc.Workers(), *cacheSize)

	// The debug mux is a separate server so profiling can stay bound to
	// loopback while the service address faces traffic. A debug-server
	// failure is logged, not fatal: the daemon serves without profiling.
	if *debugAddr != "" {
		dsrv := &http.Server{
			Addr:              *debugAddr,
			Handler:           svc.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("treeschedd: debug mux (pprof) on %s", *debugAddr)
			if err := dsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("treeschedd: debug server: %v", err)
			}
		}()
		defer dsrv.Close()
	}

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "treeschedd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	log.Printf("treeschedd: shutting down (drain %s)", *drain)
	// Flip /readyz to 503 first so the load balancer stops routing here
	// while in-flight requests drain.
	svc.BeginShutdown()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// Handlers may still be running (drain timed out), so closing the
		// worker pool is not safe; we are exiting anyway.
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("treeschedd: drain timed out after %s; in-flight requests cut off", *drain)
		} else {
			log.Printf("treeschedd: shutdown: %v", err)
		}
	} else {
		svc.Close()
	}
	log.Printf("treeschedd: bye")
}

// sloFlags collects repeated -slo flags.
type sloFlags []service.SLO

func (f *sloFlags) String() string {
	parts := make([]string, len(*f))
	for i, s := range *f {
		parts[i] = s.String()
	}
	return strings.Join(parts, ",")
}

func (f *sloFlags) Set(v string) error {
	slo, err := service.ParseSLO(v)
	if err != nil {
		return err
	}
	*f = append(*f, slo)
	return nil
}
