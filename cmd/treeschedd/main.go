// Command treeschedd serves the treesched library over HTTP: clients POST
// tree task graphs as JSON and receive per-heuristic makespan, simulated
// peak memory and the paper's lower bounds. See internal/service for the
// API and README.md for curl examples.
//
// Usage:
//
//	treeschedd -addr :8080
//	treeschedd -addr :8080 -workers 16 -cache 4096 -max-body 16777216
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"treesched/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "scheduling worker pool size (default GOMAXPROCS)")
		cacheSize = flag.Int("cache", service.DefaultCacheSize, "LRU result cache entries (negative disables)")
		maxBody   = flag.Int64("max-body", service.DefaultMaxBodyBytes, "max request body / batch line bytes")
		maxNodes  = flag.Int("max-nodes", service.DefaultMaxNodes, "max tree size in nodes")
		maxProcs  = flag.Int("max-procs", service.DefaultMaxProcs, "max processor count per request")
		drain     = flag.Duration("drain", 30*time.Second, "graceful shutdown timeout")
	)
	flag.Parse()

	svc := service.New(service.Config{
		Workers:      *workers,
		CacheSize:    *cacheSize,
		MaxBodyBytes: *maxBody,
		MaxNodes:     *maxNodes,
		MaxProcs:     *maxProcs,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("treeschedd: listening on %s (workers=%d cache=%d)", *addr, svc.Workers(), *cacheSize)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "treeschedd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	log.Printf("treeschedd: shutting down (drain %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// Handlers may still be running (drain timed out), so closing the
		// worker pool is not safe; we are exiting anyway.
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("treeschedd: drain timed out after %s; in-flight requests cut off", *drain)
		} else {
			log.Printf("treeschedd: shutdown: %v", err)
		}
	} else {
		svc.Close()
	}
	log.Printf("treeschedd: bye")
}
