// Command treeschedd serves the treesched library over HTTP: clients POST
// tree task graphs as JSON and receive per-heuristic makespan, simulated
// peak memory and the paper's lower bounds. See internal/service for the
// API and README.md for curl examples.
//
// Usage:
//
//	treeschedd -addr :8080
//	treeschedd -addr :8080 -workers 16 -cache 4096 -max-body 16777216
//	treeschedd -addr :8080 -log json                   # structured request logs on stderr
//	treeschedd -addr :8080 -debug-addr 127.0.0.1:6060  # net/http/pprof, loopback only
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"treesched/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "scheduling worker pool size (default GOMAXPROCS)")
		cacheSize = flag.Int("cache", service.DefaultCacheSize, "LRU result cache entries (negative disables)")
		maxBody   = flag.Int64("max-body", service.DefaultMaxBodyBytes, "max request body / batch line bytes")
		maxNodes  = flag.Int("max-nodes", service.DefaultMaxNodes, "max tree size in nodes")
		maxProcs  = flag.Int("max-procs", service.DefaultMaxProcs, "max processor count per request")
		drain     = flag.Duration("drain", 30*time.Second, "graceful shutdown timeout")
		logMode   = flag.String("log", "text", "per-request structured logs on stderr: text|json|off")
		debugAddr = flag.String("debug-addr", "", "optional listen address for the debug mux (net/http/pprof); keep it loopback-only")
	)
	flag.Parse()

	var logger *slog.Logger
	switch *logMode {
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "off":
	default:
		fmt.Fprintf(os.Stderr, "treeschedd: bad -log %q (want text, json or off)\n", *logMode)
		os.Exit(2)
	}

	svc := service.New(service.Config{
		Workers:      *workers,
		CacheSize:    *cacheSize,
		MaxBodyBytes: *maxBody,
		MaxNodes:     *maxNodes,
		MaxProcs:     *maxProcs,
		Logger:       logger,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("treeschedd: listening on %s (workers=%d cache=%d)", *addr, svc.Workers(), *cacheSize)

	// The debug mux is a separate server so profiling can stay bound to
	// loopback while the service address faces traffic. A debug-server
	// failure is logged, not fatal: the daemon serves without profiling.
	if *debugAddr != "" {
		dsrv := &http.Server{
			Addr:              *debugAddr,
			Handler:           service.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("treeschedd: debug mux (pprof) on %s", *debugAddr)
			if err := dsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("treeschedd: debug server: %v", err)
			}
		}()
		defer dsrv.Close()
	}

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "treeschedd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	log.Printf("treeschedd: shutting down (drain %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// Handlers may still be running (drain timed out), so closing the
		// worker pool is not safe; we are exiting anyway.
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("treeschedd: drain timed out after %s; in-flight requests cut off", *drain)
		} else {
			log.Printf("treeschedd: shutdown: %v", err)
		}
	} else {
		svc.Close()
	}
	log.Printf("treeschedd: bye")
}
