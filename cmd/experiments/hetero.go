package main

import (
	"fmt"
	"math"
	"os"
	"sort"
	"text/tabwriter"

	"treesched/internal/dataset"
	"treesched/internal/machine"
	"treesched/internal/sched"
	"treesched/internal/tree"
)

// runHetero is E18: heterogeneous (related) machines. For every paper
// heuristic it compares, over the collection,
//
//   - the makespan ratio (vs the speed-scaled lower bound) on a uniform
//     3-processor machine against a 2-speed machine "2x1.0+2x0.5" of equal
//     aggregate speed (3): how much the same aggregate capacity costs when
//     split unevenly;
//   - speed-aware against speed-blind assignment on the 2-speed machine:
//     the blind schedule is the heuristic's uniform-4 schedule (identical
//     processors assumed) re-timed on the real machine with its processor
//     assignment and per-processor order kept.
func runHetero(insts []dataset.Instance) {
	het, err := machine.ParseSpec("2x1.0+2x0.5")
	if err != nil {
		fatal(err)
	}
	uni := machine.Uniform(3) // equal aggregate speed Σs = 3

	type acc struct {
		logUni, logHet, logBlindGain float64
		blindWins                    int
		n                            int
	}
	accs := make(map[sched.HeuristicID]*acc)
	ids := sched.PaperHeuristics()
	for _, id := range ids {
		accs[id] = &acc{}
	}

	for _, inst := range insts {
		t := inst.Tree
		pc := sched.NewPrecompute(t)
		lbUni := sched.MakespanLowerBoundOn(t, uni)
		lbHet := sched.MakespanLowerBoundOn(t, het)
		for _, id := range ids {
			sUni, err := pc.RunOn(id, uni, 0)
			if err != nil {
				fatal(err)
			}
			sHet, err := pc.RunOn(id, het, 0)
			if err != nil {
				fatal(err)
			}
			// Speed-blind baseline: schedule as if the 4 processors were
			// identical, then live with the real speeds.
			sBlind, err := pc.Run(id, het.P(), 0)
			if err != nil {
				fatal(err)
			}
			blindMs := retime(t, sBlind, het)
			awareMs := sHet.Makespan(t)
			a := accs[id]
			a.logUni += math.Log(sUni.Makespan(t) / lbUni)
			a.logHet += math.Log(awareMs / lbHet)
			a.logBlindGain += math.Log(blindMs / awareMs)
			if blindMs < awareMs-1e-9 {
				a.blindWins++
			}
			a.n++
		}
	}

	fmt.Println("== E18: uniform vs 2-speed machines at equal aggregate speed ==")
	fmt.Printf("uniform machine %s vs heterogeneous %s (both Σ speeds = 3); %d trees\n",
		uni.Spec(), het.Spec(), accs[ids[0]].n)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "heuristic\tms/LB uniform(3)\tms/LB 2-speed\tblind/aware ms\tblind wins")
	names := append([]sched.HeuristicID(nil), ids...)
	sort.Slice(names, func(a, b int) bool { return names[a] < names[b] })
	for _, id := range ids {
		a := accs[id]
		n := float64(a.n)
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t%d/%d\n", id,
			math.Exp(a.logUni/n), math.Exp(a.logHet/n), math.Exp(a.logBlindGain/n), a.blindWins, a.n)
	}
	w.Flush()
	fmt.Println("blind/aware > 1: speed-aware assignment beats assuming-identical-processors, re-timed on the real machine")
}

// retime replays a schedule built for identical processors on the real
// machine m: the processor assignment and each processor's task order are
// kept, starts are recomputed greedily (a task starts when its processor
// frees and its children have finished), durations are speed-scaled. This
// is the "speed-blind" baseline: what the schedule's decisions cost when
// the speeds it ignored become real.
func retime(t *tree.Tree, s *sched.Schedule, m *machine.Model) float64 {
	n := t.Len()
	// Depth breaks start-time ties child-first (a zero-duration child may
	// share its parent's start), keeping the replay dependency-safe.
	depth := make([]int32, n)
	top := t.TopOrder() // children before parents; walk backwards for depths
	for i := n - 1; i >= 0; i-- {
		v := top[i]
		if p := t.Parent(v); p != tree.None {
			depth[v] = depth[p] + 1
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		va, vb := order[a], order[b]
		if s.Start[va] != s.Start[vb] {
			return s.Start[va] < s.Start[vb]
		}
		if depth[va] != depth[vb] {
			return depth[va] > depth[vb]
		}
		return va < vb
	})
	procFree := make([]float64, m.P())
	finish := make([]float64, n)
	var ms float64
	for _, v := range order {
		q := s.Proc[v]
		at := procFree[q]
		for _, c := range t.Children(v) {
			if finish[c] > at {
				at = finish[c]
			}
		}
		finish[v] = at + m.ExecTime(t.W(v), q)
		procFree[q] = finish[v]
		if finish[v] > ms {
			ms = finish[v]
		}
	}
	return ms
}
