package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"text/tabwriter"

	"treesched/internal/exact"
	"treesched/internal/machine"
	"treesched/internal/sched"
	"treesched/internal/tree"
)

// runGapStudy is E19: the optimality-gap ledger. The branch-and-bound of
// internal/exact proves minimum makespans on a population of small trees
// (every generator family × sizes {6, 8, 10} × 3 seeds — the dataset
// collection's trees are far beyond exact reach), and every heuristic is
// measured against the optimum of the constraint it actually honors:
//
//   - the uncapped heuristics against the uncapped optimum, at p ∈ {2, 4};
//   - the capped pair (MemCapped, MemCappedBooking) against the optimum
//     under the same cap, sweeping cap factors {1.0, 1.5, 2.0} × p ∈ {2, 4}.
//
// Gaps are makespan ratios (1.0 = heuristic found an optimum). Instances
// the search cannot close within the node budget are skipped and counted.
func runGapStudy(seed int64) {
	const budget = int64(1 << 20)
	trees := gapStudyTrees(seed)
	procs := []int{2, 4}
	factors := []float64{1.0, 1.5, 2.0}

	uncapped := []sched.HeuristicID{
		sched.IDParSubtrees, sched.IDParSubtreesOptim,
		sched.IDParInnerFirst, sched.IDParDeepestFirst,
		sched.IDParInnerFirstArbitrary,
		sched.IDSequential, sched.IDOptimalSequential,
	}
	capped := []sched.HeuristicID{sched.IDMemCapped, sched.IDMemCappedBooking}

	type cell struct {
		sum, worst float64
		optimal, n int
	}
	// Uncapped: heuristic × p. Capped: heuristic × p × factor.
	uc := make(map[sched.HeuristicID]map[int]*cell)
	cc := make(map[sched.HeuristicID]map[int]map[float64]*cell)
	for _, id := range uncapped {
		uc[id] = map[int]*cell{}
		for _, p := range procs {
			uc[id][p] = &cell{}
		}
	}
	for _, id := range capped {
		cc[id] = map[int]map[float64]*cell{}
		for _, p := range procs {
			cc[id][p] = map[float64]*cell{}
			for _, f := range factors {
				cc[id][p][f] = &cell{}
			}
		}
	}
	observe := func(c *cell, mk, opt float64) {
		g := mk / opt
		c.sum += g
		if g > c.worst {
			c.worst = g
		}
		if mk == opt {
			c.optimal++
		}
		c.n++
	}

	solves, proved := 0, 0
	for _, t := range trees {
		pc := sched.NewPrecompute(t)
		for _, p := range procs {
			m := machine.Uniform(p)
			solves++
			free, err := exact.SolvePre(pc, m, math.MaxInt64, budget)
			if err != nil {
				fatal(err)
			}
			if free.Proven {
				proved++
				for _, id := range uncapped {
					s, err := pc.RunOn(id, m, 0)
					if err != nil {
						fatal(err)
					}
					observe(uc[id][p], s.Makespan(t), free.Makespan)
				}
			}
			for _, f := range factors {
				cap := exact.CapFromFactor(f, pc.MSeq())
				solves++
				res, err := exact.SolvePre(pc, m, cap, budget)
				if err != nil {
					fatal(err)
				}
				if !res.Proven {
					continue
				}
				proved++
				for _, id := range capped {
					s, err := pc.RunOn(id, m, f)
					if err != nil {
						fatal(err)
					}
					observe(cc[id][p][f], s.Makespan(t), res.Makespan)
				}
			}
		}
	}

	fmt.Println("== E19: optimality gaps against the exact branch-and-bound ==")
	fmt.Printf("%d small trees (families × sizes 6/8/10 × 3 seeds), %d exact solves, %d proved, budget %d nodes\n\n",
		len(trees), solves, proved, budget)

	fmt.Printf("Uncapped heuristics vs the uncapped optimum (gap = makespan/optimum):\n")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "heuristic\tp=2 mean\tp=2 worst\tp=2 opt\tp=4 mean\tp=4 worst\tp=4 opt\n")
	for _, id := range uncapped {
		fmt.Fprintf(tw, "%s", id)
		for _, p := range procs {
			c := uc[id][p]
			fmt.Fprintf(tw, "\t%.3f\t%.3f\t%d/%d", c.sum/float64(c.n), c.worst, c.optimal, c.n)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	fmt.Printf("\nCapped heuristics vs the optimum under the same cap (cap = ceil(f × M_seq)):\n")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "heuristic\tp\tf=1.0 mean/worst\tf=1.5 mean/worst\tf=2.0 mean/worst\n")
	for _, id := range capped {
		for _, p := range procs {
			fmt.Fprintf(tw, "%s\tp=%d", id, p)
			for _, f := range factors {
				c := cc[id][p][f]
				fmt.Fprintf(tw, "\t%.3f / %.3f (%d/%d opt)", c.sum/float64(c.n), c.worst, c.optimal, c.n)
			}
			fmt.Fprintln(tw)
		}
	}
	tw.Flush()
	fmt.Println()
}

// gapStudyTrees generates the E19 population: deterministic in seed, all
// within the exact solver's node limit.
func gapStudyTrees(seed int64) []*tree.Tree {
	rng := rand.New(rand.NewSource(seed))
	ws := tree.WeightSpec{WMin: 1, WMax: 10, NMin: 0, NMax: 5, FMin: 1, FMax: 20}
	families := []func(n int) *tree.Tree{
		func(n int) *tree.Tree { return tree.RandomAttachment(rng, n, ws) },
		func(n int) *tree.Tree { return tree.RandomPrufer(rng, n, ws) },
		func(n int) *tree.Tree { return tree.RandomBinary(rng, n, ws) },
		func(n int) *tree.Tree { return tree.Chain(rng, n, ws) },
		func(n int) *tree.Tree { return tree.Fork(rng, n, ws) },
		func(n int) *tree.Tree { return tree.Caterpillar(rng, n/3, 2, ws) },
	}
	var trees []*tree.Tree
	for _, gen := range families {
		for _, n := range []int{6, 8, 10} {
			for r := 0; r < 3; r++ {
				trees = append(trees, gen(n))
			}
		}
	}
	return trees
}
