package main

import (
	"fmt"
	"math/rand"
	"time"

	"treesched/internal/sched"
	"treesched/internal/tree"
)

// runPartitionStudy (E20) measures the partitioned single-tree scheduler
// against sequential ParInnerFirst: wall-clock speedup and makespan cost
// across tree sizes and partition counts at p=8. The partitioned path
// trades schedule quality for construction throughput, so both columns
// matter: speedup > 1 is only worth its makespan ratio.
func runPartitionStudy(sizes []int, seed int64) {
	fmt.Println("== Extension E20: partitioned ParInnerFirst scaling at p=8 ==")
	fmt.Printf("%9s  %5s  %10s  %8s  %12s\n", "nodes", "parts", "wall ms", "speedup", "makespan/seq")
	rng := rand.New(rand.NewSource(seed))
	ws := tree.WeightSpec{WMin: 1, WMax: 10, NMin: 0, NMax: 5, FMin: 1, FMax: 20}
	const p = 8
	const reps = 3
	for _, n := range sizes {
		t := tree.RandomAttachment(rng, n, ws)
		pc := sched.NewPrecompute(t)
		var seqS *sched.Schedule
		seqWall := time.Duration(1<<63 - 1)
		for r := 0; r < reps; r++ {
			start := time.Now()
			s, err := pc.ParInnerFirst(p)
			if err != nil {
				fatal(err)
			}
			if d := time.Since(start); d < seqWall {
				seqWall = d
			}
			seqS = s
		}
		seqMs := seqS.Makespan(t)
		fmt.Printf("%9d  %5s  %10.2f  %8s  %12s\n", n, "seq",
			float64(seqWall.Nanoseconds())/1e6, "1.00x", "1.000")
		for _, parts := range []int{2, 4, 8, 16} {
			var partS *sched.Schedule
			wall := time.Duration(1<<63 - 1)
			for r := 0; r < reps; r++ {
				start := time.Now()
				s, err := pc.PartitionedInnerFirst(p, parts)
				if err != nil {
					fatal(err)
				}
				if d := time.Since(start); d < wall {
					wall = d
				}
				partS = s
			}
			fmt.Printf("%9d  %5d  %10.2f  %7.2fx  %12.3f\n", n, parts,
				float64(wall.Nanoseconds())/1e6,
				float64(seqWall)/float64(wall),
				partS.Makespan(t)/seqMs)
		}
	}
	fmt.Println()
}
