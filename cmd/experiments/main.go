// Command experiments regenerates every table and figure of the paper's
// evaluation (§6) on the synthetic tree collection, plus the repo's
// ablation and extension studies:
//
//	experiments -scale standard -out results/      # Table 1 + Figs 6-8
//	experiments -scale quick -table1               # just Table 1, fast
//	experiments -ablation                          # E12: leaf-order ablation
//	experiments -memcap                            # E13: memory-cap sweep
//	experiments -hetero                            # E18: heterogeneous machines
//	experiments -gap                               # E19: optimality-gap ledger
//	experiments -partition                         # E20: partitioned-scheduler scaling
//
// Outputs: human-readable summaries on stdout; per-figure CSV point clouds
// and crosses under -out (if set).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"treesched/internal/dataset"
	"treesched/internal/report"
	"treesched/internal/sched"
	"treesched/internal/stats"
)

func main() {
	var (
		scale  = flag.String("scale", "standard", "collection scale: quick|standard|full")
		seed   = flag.Int64("seed", 42, "collection seed")
		outDir = flag.String("out", "", "directory for CSV outputs (optional)")
		table1 = flag.Bool("table1", false, "run only Table 1")
		fig6   = flag.Bool("fig6", false, "run only Figure 6")
		fig7   = flag.Bool("fig7", false, "run only Figure 7")
		fig8   = flag.Bool("fig8", false, "run only Figure 8")
		ablate = flag.Bool("ablation", false, "run only the leaf-order ablation (E12)")
		memcap = flag.Bool("memcap", false, "run only the memory-cap sweep (E13)")
		hetero = flag.Bool("hetero", false, "run only the heterogeneous-machine study (E18)")
		gap    = flag.Bool("gap", false, "run only the optimality-gap ledger (E19)")
		parti  = flag.Bool("partition", false, "run only the partitioned-scheduler scaling study (E20)")
		byp    = flag.Bool("byp", false, "additionally break Table 1 down per processor count")
	)
	flag.Parse()
	all := !(*table1 || *fig6 || *fig7 || *fig8 || *ablate || *memcap || *hetero || *gap || *parti)

	sc := dataset.Standard
	switch *scale {
	case "quick":
		sc = dataset.Quick
	case "full":
		sc = dataset.Full
	case "standard":
	default:
		fatal(fmt.Errorf("unknown scale %q", *scale))
	}
	insts, err := dataset.Collection(sc, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("collection: %d trees (scale=%s seed=%d)\n", len(insts), *scale, *seed)
	minN, maxN := insts[0].Tree.Len(), insts[0].Tree.Len()
	for _, in := range insts {
		if n := in.Tree.Len(); n < minN {
			minN = n
		} else if n > maxN {
			maxN = n
		}
	}
	fmt.Printf("tree sizes: %d .. %d nodes; p ∈ %v\n\n", minN, maxN, dataset.ProcessorCounts)

	var scs []report.Scenario
	needScenarios := all || *table1 || *fig6 || *fig7 || *fig8
	if needScenarios {
		scs, err = report.Run(insts, dataset.ProcessorCounts)
		if err != nil {
			fatal(err)
		}
	}

	if all || *table1 {
		fmt.Println("== Table 1: best-performance shares and average deviations ==")
		if err := report.WriteTable1(os.Stdout, report.Table1(scs)); err != nil {
			fatal(err)
		}
		fmt.Println()
		if *byp {
			fmt.Println("== Table 1 per processor count ==")
			if err := report.WriteByP(os.Stdout, report.ByP(scs)); err != nil {
				fatal(err)
			}
		}
	}
	figs := []struct {
		name string
		on   bool
		pts  func() []report.FigPoint
	}{
		{"fig6", all || *fig6, func() []report.FigPoint { return report.Fig6(scs) }},
		{"fig7", all || *fig7, func() []report.FigPoint { return report.Fig7(scs) }},
		{"fig8", all || *fig8, func() []report.FigPoint { return report.Fig8(scs) }},
	}
	refs := map[string]string{
		"fig6": "lower bounds (x: makespan/LB, y: memory/Mseq)",
		"fig7": "ParSubtrees (x: makespan ratio, y: memory ratio)",
		"fig8": "ParInnerFirst (x: makespan ratio, y: memory ratio)",
	}
	for _, f := range figs {
		if !f.on {
			continue
		}
		pts := f.pts()
		fmt.Printf("== %s: comparison to %s ==\n", f.name, refs[f.name])
		if err := report.RenderScatter(os.Stdout, pts, 68, 18); err != nil {
			fatal(err)
		}
		if err := report.WriteCrosses(os.Stdout, report.Crosses(pts)); err != nil {
			fatal(err)
		}
		fmt.Println()
		if *outDir != "" {
			if err := writeCSV(*outDir, f.name+".csv", pts); err != nil {
				fatal(err)
			}
		}
	}
	if all || *ablate {
		runAblation(insts)
		runSplitAblation(insts)
	}
	if all || *memcap {
		runMemCapSweep(insts)
	}
	if all || *hetero {
		runHetero(insts)
	}
	if all || *gap {
		runGapStudy(*seed)
	}
	if all || *parti {
		// E20 generates its own trees: the scaling study needs sizes well
		// past the collection's, up to 10⁶ nodes at standard scale.
		sizes := []int{10_000, 100_000, 1_000_000}
		switch *scale {
		case "quick":
			sizes = []int{10_000, 100_000}
		case "full":
			sizes = append(sizes, 2_000_000)
		}
		runPartitionStudy(sizes, *seed)
	}
}

// runSplitAblation quantifies Lemma 1 (E14): the optimal splitting rank of
// SplitSubtrees against stopping at the first feasible splitting.
func runSplitAblation(insts []dataset.Instance) {
	fmt.Println("== Ablation E14: SplitSubtrees optimal rank (Lemma 1) vs naive stopping ==")
	var ratios []float64
	for _, in := range insts {
		for _, p := range []int{4, 16} {
			opt := sched.SplitSubtrees(in.Tree, p)
			naive := sched.SplitSubtreesNaive(in.Tree, p)
			ratios = append(ratios, naive.PredictedMakespan/opt.PredictedMakespan)
		}
	}
	fmt.Printf("makespan(naive)/makespan(optimal): mean %.3f, P90 %.3f, max %.3f\n\n",
		stats.Mean(ratios), stats.Percentile(ratios, 90), stats.Max(ratios))
}

// runAblation compares ParInnerFirst with the optimal-postorder leaf order
// against the same scheduler with an arbitrary leaf order (E12).
func runAblation(insts []dataset.Instance) {
	fmt.Println("== Ablation E12: leaf order of ParInnerFirst (postorder vs arbitrary) ==")
	var ratios []float64
	arb, _ := sched.ByName("ParInnerFirstArbitrary")
	for _, in := range insts {
		for _, p := range []int{4, 16} {
			s1, err := sched.ParInnerFirst(in.Tree, p)
			if err != nil {
				fatal(err)
			}
			s2, err := arb.Run(in.Tree, p)
			if err != nil {
				fatal(err)
			}
			m1 := float64(sched.PeakMemory(in.Tree, s1))
			m2 := float64(sched.PeakMemory(in.Tree, s2))
			ratios = append(ratios, m2/m1)
		}
	}
	fmt.Printf("memory(arbitrary)/memory(postorder): mean %.3f, P10 %.3f, P90 %.3f, max %.3f\n\n",
		stats.Mean(ratios), stats.Percentile(ratios, 10), stats.Percentile(ratios, 90), stats.Max(ratios))
}

// runMemCapSweep traces the memory/makespan trade-off of the two capped
// schedulers (E13) on each instance at p=8.
func runMemCapSweep(insts []dataset.Instance) {
	fmt.Println("== Extension E13: memory-capped scheduling at p=8 ==")
	fmt.Println("cap/Mseq   activation ms/LB (mean, P90)   booking ms/LB (mean, P90)")
	for _, factor := range []float64{1.0, 1.5, 2.0, 3.0, 5.0} {
		var act, book []float64
		for _, in := range insts {
			mseq := sched.MemoryLowerBound(in.Tree)
			cap := int64(factor * float64(mseq))
			lb := sched.MakespanLowerBound(in.Tree, 8)
			s, err := sched.MemCapped(in.Tree, 8, cap)
			if err != nil {
				fatal(err)
			}
			act = append(act, s.Makespan(in.Tree)/lb)
			s, err = sched.MemCappedBooking(in.Tree, 8, cap)
			if err != nil {
				fatal(err)
			}
			book = append(book, s.Makespan(in.Tree)/lb)
		}
		fmt.Printf("%8.1f   %14.3f  %9.3f   %13.3f  %9.3f\n", factor,
			stats.Mean(act), stats.Percentile(act, 90),
			stats.Mean(book), stats.Percentile(book, 90))
	}
	fmt.Println()
}

func writeCSV(dir, name string, pts []report.FigPoint) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return report.WriteCSV(f, pts)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
