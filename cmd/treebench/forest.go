package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"treesched/internal/forest"
)

// ForestReport is the JSON document of the forest benchmark suite: one
// shared trace simulated under every admission policy, with per-policy
// quality numbers and the simulation throughput the regression gate
// watches.
type ForestReport struct {
	Suite        string  `json:"suite"`
	Scale        string  `json:"scale"`
	Seed         int64   `json:"seed"`
	Processors   int     `json:"p"`
	Jobs         int     `json:"jobs"`
	MemCapFactor float64 `json:"mem_cap_factor"`
	// MemCap is the resolved absolute cap (factor × the trace's largest
	// M_seq), identical across policies.
	MemCap int64 `json:"mem_cap"`
	// Policies maps policy name to its quality stats on the shared trace.
	Policies map[string]ForestPolicyStats `json:"policies"`
	// SimJobsPerSec is jobs simulated per wall-clock second across all
	// policy runs (planning included) — the gated throughput metric.
	SimJobsPerSec float64 `json:"sim_jobs_per_sec"`
	WallMS        float64 `json:"wall_ms"`
}

// ForestPolicyStats summarizes one policy's run over the shared trace.
type ForestPolicyStats struct {
	Completed    int     `json:"completed"`
	Rejected     int     `json:"rejected"`
	Makespan     float64 `json:"makespan"`
	Utilization  float64 `json:"utilization"`
	PeakResident int64   `json:"peak_resident"`
	MeanLatency  float64 `json:"mean_latency"`
	P99Latency   float64 `json:"p99_latency"`
	MeanStretch  float64 `json:"mean_stretch"`
	MeanWait     float64 `json:"mean_wait"`
}

// forestSuite builds the benchmark trace for a scale.
func forestSuite(scale string, seed int64) ([]forest.Job, int, error) {
	var cfg forest.GenConfig
	var p int
	switch scale {
	case "quick":
		cfg = forest.GenConfig{Jobs: 60, Seed: seed, MaxNodes: 200, Arrivals: "bursty", Rate: 0.1}
		p = 8
	case "standard":
		cfg = forest.GenConfig{Jobs: 400, Seed: seed, MaxNodes: 1000, Arrivals: "poisson", Rate: 0.02, Dataset: true}
		p = 8
	default:
		return nil, 0, fmt.Errorf("unknown scale %q (quick or standard)", scale)
	}
	jobs, err := forest.GenTrace(cfg)
	return jobs, p, err
}

const forestCapFactor = 1.5

// runForestSuite simulates the trace under every admission policy and
// assembles the report.
func runForestSuite(scale string, seed int64) (*ForestReport, error) {
	jobs, p, err := forestSuite(scale, seed)
	if err != nil {
		return nil, err
	}
	rep := &ForestReport{
		Suite:        "forest",
		Scale:        scale,
		Seed:         seed,
		Processors:   p,
		Jobs:         len(jobs),
		MemCapFactor: forestCapFactor,
		Policies:     make(map[string]ForestPolicyStats, 4),
	}
	ctx := context.Background()
	start := time.Now()
	simulated := 0
	for _, pol := range forest.Policies() {
		res, err := forest.Run(ctx, jobs, forest.Config{
			Processors:   p,
			MemCapFactor: forestCapFactor,
			Policy:       pol,
		})
		if err != nil {
			return nil, fmt.Errorf("policy %s: %w", pol, err)
		}
		s := res.Summary
		if s.PeakResident > s.MemCap {
			return nil, fmt.Errorf("policy %s: peak resident %d exceeds cap %d", pol, s.PeakResident, s.MemCap)
		}
		rep.MemCap = s.MemCap
		rep.Policies[pol.String()] = ForestPolicyStats{
			Completed:    s.Completed,
			Rejected:     s.Rejected,
			Makespan:     s.Makespan,
			Utilization:  s.Utilization,
			PeakResident: s.PeakResident,
			MeanLatency:  s.MeanLatency,
			P99Latency:   s.P99Latency,
			MeanStretch:  s.MeanStretch,
			MeanWait:     s.MeanWait,
		}
		simulated += s.Jobs
	}
	wall := time.Since(start)
	rep.WallMS = float64(wall.Microseconds()) / 1000
	if wall > 0 {
		rep.SimJobsPerSec = float64(simulated) / wall.Seconds()
	}
	return rep, nil
}

func printForestReport(rep *ForestReport) {
	fmt.Printf("forest bench: %s scale, %d jobs on p=%d, cap %g×maxM_seq, 4 policies\n",
		rep.Scale, rep.Jobs, rep.Processors, rep.MemCapFactor)
	fmt.Printf("simulated %.0f jobs/sec (wall %.1f ms, planning included)\n\n", rep.SimJobsPerSec, rep.WallMS)
	names := make([]string, 0, len(rep.Policies))
	for n := range rep.Policies {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%-14s %9s %8s %9s %9s %8s %8s\n", "policy", "meanLat", "p99Lat", "stretch", "util", "peakMem", "rejected")
	for _, n := range names {
		st := rep.Policies[n]
		fmt.Printf("%-14s %9.1f %8.1f %9.2f %9.3f %8d %8d\n",
			n, st.MeanLatency, st.P99Latency, st.MeanStretch, st.Utilization, st.PeakResident, st.Rejected)
	}
}

// forestGate compares rep against a baseline ForestReport and errors when
// the simulation throughput regressed by more than maxratio.
func forestGate(rep *ForestReport, path string, maxratio float64) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base ForestReport
	if err := json.Unmarshal(b, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	if base.Suite != rep.Suite || base.Scale != rep.Scale || base.Seed != rep.Seed ||
		base.Jobs != rep.Jobs || base.Processors != rep.Processors {
		return fmt.Errorf("baseline %s is %s/%s seed %d (%d jobs, p=%d); this run is %s/%s seed %d (%d jobs, p=%d)",
			path, base.Suite, base.Scale, base.Seed, base.Jobs, base.Processors,
			rep.Suite, rep.Scale, rep.Seed, rep.Jobs, rep.Processors)
	}
	if base.SimJobsPerSec > 0 && rep.SimJobsPerSec < base.SimJobsPerSec/maxratio {
		return fmt.Errorf("simulation throughput %.0f jobs/sec below baseline %.0f / %g",
			rep.SimJobsPerSec, base.SimJobsPerSec, maxratio)
	}
	// Quality regression guard: a policy silently completing fewer jobs
	// than the baseline is a behavior change, not noise.
	for name, bst := range base.Policies {
		if st, ok := rep.Policies[name]; !ok || st.Completed < bst.Completed {
			return fmt.Errorf("policy %s completed %d jobs, baseline %d", name, rep.Policies[name].Completed, bst.Completed)
		}
	}
	return nil
}

// forestMain is the -suite forest entry point.
func forestMain(scale string, seed int64, out, baseline string, maxratio float64) {
	rep, err := runForestSuite(scale, seed)
	if err != nil {
		fatal(err)
	}
	printForestReport(rep)
	if out != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", out)
	}
	if baseline != "" {
		if err := forestGate(rep, baseline, maxratio); err != nil {
			fmt.Fprintln(os.Stderr, "treebench: REGRESSION:", err)
			os.Exit(1)
		}
		fmt.Printf("regression gate vs %s passed (maxratio %g)\n", baseline, maxratio)
	}
}
