// Command treebench benchmarks the scheduling engines over generated
// suites and writes machine-readable reports, seeding the repo's
// performance trajectory.
//
// The portfolio suite (default) measures per-run latency percentiles,
// scheduling throughput, Pareto-frontier sizes, the racing speedup, and
// which heuristic wins under each objective. The forest suite simulates
// one generated job trace under every admission policy and reports
// per-policy latency/stretch/utilization plus the simulation throughput.
//
// Usage:
//
//	treebench -quick                                  # CI scale, writes BENCH_portfolio.json
//	treebench -scale standard -out bench.json
//	treebench -quick -baseline BENCH_portfolio.json   # regression gate: fail on >2× slowdown
//	treebench -suite forest -quick                    # writes BENCH_forest.json
//	treebench -suite forest -quick -baseline BENCH_forest.json
//	treebench -suite core -quick -baseline BENCH_core.json
//	treebench -suite gap -quick -baseline BENCH_gap.json
//	treebench -quick -cpuprofile cpu.prof -memprofile mem.prof
//
// The core suite microbenchmarks the scheduling primitives (ns/op,
// allocs/op, ops/sec per heuristic × tree family × size). The gap suite
// is the optimality-gap ledger: it proves optima with the exact
// branch-and-bound on small trees and reports every heuristic's worst
// and mean makespan gap against them. The regression gate compares the
// suite's key metrics (p50 latency and schedules/sec for portfolio;
// simulated jobs/sec and per-policy completions for forest; per-bench
// geomean ns/op and allocs/op for core; proved-instances/sec and
// per-heuristic worst gap for gap) against a previously written report
// and exits non-zero on a >-maxratio degradation.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"slices"
	"sort"
	"strconv"
	"strings"
	"time"

	"treesched/internal/dataset"
	"treesched/internal/portfolio"
	"treesched/internal/sched"
	"treesched/internal/stats"
	"treesched/internal/tree"
)

// objectives is the fixed panel reported in the winners table; it spans
// the paper's trade-off from pure makespan to pure memory.
var objectives = []portfolio.Objective{
	portfolio.MinMakespan(),
	portfolio.MemoryUnderDeadline(1.5),
	portfolio.Weighted(0.5),
	portfolio.MakespanUnderMemCap(2),
	portfolio.MinMemory(),
}

// Report is the JSON document treebench writes and the regression gate
// reads back.
type Report struct {
	Scale            string  `json:"scale"`
	Seed             int64   `json:"seed"`
	Processors       []int   `json:"processors"`
	Trees            int     `json:"trees"`
	Runs             int     `json:"runs"`
	CandidatesPerRun int     `json:"candidates_per_run"`
	P50LatencyUS     float64 `json:"p50_latency_us"`
	P99LatencyUS     float64 `json:"p99_latency_us"`
	SchedulesPerSec  float64 `json:"schedules_per_sec"`
	MeanFrontierSize float64 `json:"mean_frontier_size"`
	MaxFrontierSize  int     `json:"max_frontier_size"`
	// MeanSpeedup is the mean over runs of (sum of per-candidate times) /
	// (portfolio wall time): the latency win of racing over running the
	// candidates back to back. ~1 on a single-core machine, approaching
	// the candidate count with enough cores.
	MeanSpeedup float64 `json:"mean_speedup"`
	// Winners[objective][heuristic] counts the runs the heuristic won.
	Winners map[string]map[string]int `json:"winners"`
}

func main() {
	var (
		suiteName = flag.String("suite", "portfolio", "benchmark suite: portfolio, forest, core, gap or obs")
		quick     = flag.Bool("quick", false, "shorthand for -scale quick (the CI scale)")
		scale     = flag.String("scale", "standard", "suite scale: quick or standard")
		seed      = flag.Int64("seed", 42, "suite seed")
		plist     = flag.String("p", "2,8", "comma-separated processor counts (portfolio suite)")
		out       = flag.String("out", "auto", "output report path ('auto': BENCH_<suite>.json; '' to skip writing)")
		baseline  = flag.String("baseline", "", "prior report to regression-check against")
		maxratio  = flag.Float64("maxratio", 2, "fail when the suite's gated metrics regress by more than this factor")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile of the suite to this file")
		memprof   = flag.String("memprofile", "", "write a heap profile at suite end to this file")
		machSpec  = flag.String("machine", "4x1.0+4x0.5", "heterogeneous machine spec for the core suite's */het rows (same processor count as the uniform rows)")
	)
	flag.Parse()
	if *quick {
		*scale = "quick"
	}
	if *out == "auto" {
		// The obs rows live inside BENCH_core.json; the standalone obs
		// suite writes no report of its own unless -out names one.
		if *suiteName == "obs" {
			*out = ""
		} else {
			*out = "BENCH_" + *suiteName + ".json"
		}
	}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}
	switch *suiteName {
	case "forest":
		forestMain(*scale, *seed, *out, *baseline, *maxratio)
		return
	case "core":
		coreMain(*scale, *seed, *machSpec, *out, *baseline, *maxratio)
		return
	case "gap":
		gapMain(*scale, *seed, *out, *baseline, *maxratio)
		return
	case "obs":
		obsMain(*scale, *seed, *machSpec, *out, *baseline, *maxratio)
		return
	case "portfolio":
	default:
		fatal(fmt.Errorf("unknown suite %q (portfolio, forest, core, gap or obs)", *suiteName))
	}
	ps, err := parsePList(*plist)
	if err != nil {
		fatal(err)
	}

	trees, err := suite(*scale, *seed)
	if err != nil {
		fatal(err)
	}
	rep, err := run(trees, ps, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	printReport(rep)

	if *out != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *baseline != "" {
		if err := gate(rep, *baseline, *maxratio); err != nil {
			fmt.Fprintln(os.Stderr, "treebench: REGRESSION:", err)
			os.Exit(1)
		}
		fmt.Printf("regression gate vs %s passed (maxratio %g)\n", *baseline, *maxratio)
	}
}

// suite builds the benchmark trees: the deterministic synthetic assembly
// trees of internal/dataset plus random families from the tree generators,
// so both realistic multifrontal shapes and adversarial shapes (chains,
// forks, caterpillars) are covered.
func suite(scale string, seed int64) ([]*tree.Tree, error) {
	var ds dataset.Scale
	var sizes []int
	switch scale {
	case "quick":
		ds, sizes = dataset.Quick, []int{100, 300}
	case "standard":
		ds, sizes = dataset.Standard, []int{1000, 5000}
	default:
		return nil, fmt.Errorf("unknown scale %q (quick or standard)", scale)
	}
	insts, err := dataset.Collection(ds, seed)
	if err != nil {
		return nil, err
	}
	trees := make([]*tree.Tree, 0, len(insts)+6*len(sizes))
	for _, inst := range insts {
		trees = append(trees, inst.Tree)
	}
	rng := rand.New(rand.NewSource(seed))
	ws := tree.WeightSpec{WMin: 1, WMax: 10, NMin: 0, NMax: 5, FMin: 1, FMax: 20}
	for _, n := range sizes {
		trees = append(trees,
			tree.RandomAttachment(rng, n, ws),
			tree.RandomPrufer(rng, n, ws),
			tree.RandomBinary(rng, n, ws),
			tree.Chain(rng, n, ws),
			tree.Fork(rng, n, ws),
			tree.Caterpillar(rng, n/4, 3, ws),
		)
	}
	return trees, nil
}

func run(trees []*tree.Tree, ps []int, scale string, seed int64) (*Report, error) {
	rep := &Report{
		Scale:            scale,
		Seed:             seed,
		Processors:       ps,
		Trees:            len(trees),
		CandidatesPerRun: len(portfolio.DefaultCandidates()),
		Winners:          make(map[string]map[string]int, len(objectives)),
	}
	for _, obj := range objectives {
		rep.Winners[obj.String()] = make(map[string]int)
	}
	var (
		latencies    []float64
		frontierSum  int
		speedups     []float64
		totalElapsed time.Duration
	)
	ctx := context.Background()
	for _, t := range trees {
		for _, p := range ps {
			res, err := portfolio.Run(ctx, t, objectives[0], portfolio.Options{
				Options: sched.Options{Processors: p},
			})
			if err != nil {
				return nil, err
			}
			rep.Runs++
			latencies = append(latencies, float64(res.Elapsed.Microseconds()))
			totalElapsed += res.Elapsed
			frontierSum += len(res.Frontier)
			if n := len(res.Frontier); n > rep.MaxFrontierSize {
				rep.MaxFrontierSize = n
			}
			var sum time.Duration
			for _, c := range res.Candidates {
				if c.Err != nil {
					return nil, fmt.Errorf("%s failed on a %d-node tree: %w", c.ID, t.Len(), c.Err)
				}
				sum += c.Elapsed
			}
			if res.Elapsed > 0 {
				speedups = append(speedups, float64(sum)/float64(res.Elapsed))
			}
			// The winners table re-selects over the same raced candidates:
			// selection is pure, so one race serves every objective.
			for _, obj := range objectives {
				if w := obj.Select(res.Candidates, res.MakespanLB, res.MemorySeq); w >= 0 {
					rep.Winners[obj.String()][res.Candidates[w].ID.String()]++
				}
			}
		}
	}
	rep.P50LatencyUS = stats.Percentile(latencies, 50)
	rep.P99LatencyUS = stats.Percentile(latencies, 99)
	if totalElapsed > 0 {
		rep.SchedulesPerSec = float64(rep.Runs*rep.CandidatesPerRun) / totalElapsed.Seconds()
	}
	if rep.Runs > 0 {
		rep.MeanFrontierSize = float64(frontierSum) / float64(rep.Runs)
	}
	rep.MeanSpeedup = stats.Mean(speedups)
	return rep, nil
}

func printReport(rep *Report) {
	fmt.Printf("portfolio bench: %s scale, %d trees × p%v = %d runs, %d candidates each\n",
		rep.Scale, rep.Trees, rep.Processors, rep.Runs, rep.CandidatesPerRun)
	fmt.Printf("latency p50 %.0fµs  p99 %.0fµs  |  %.0f schedules/sec  |  racing speedup ×%.2f\n",
		rep.P50LatencyUS, rep.P99LatencyUS, rep.SchedulesPerSec, rep.MeanSpeedup)
	fmt.Printf("frontier size mean %.2f max %d\n\n", rep.MeanFrontierSize, rep.MaxFrontierSize)
	fmt.Println("winners per objective (share of runs):")
	for _, obj := range objectives {
		counts := rep.Winners[obj.String()]
		names := make([]string, 0, len(counts))
		for n := range counts {
			names = append(names, n)
		}
		// Most frequent first; name order breaks ties deterministically.
		sort.Slice(names, func(a, b int) bool {
			if counts[names[a]] != counts[names[b]] {
				return counts[names[a]] > counts[names[b]]
			}
			return names[a] < names[b]
		})
		parts := make([]string, 0, len(names))
		for _, n := range names {
			parts = append(parts, fmt.Sprintf("%s %.0f%%", n, 100*float64(counts[n])/float64(rep.Runs)))
		}
		fmt.Printf("  %-28s %s\n", obj, strings.Join(parts, ", "))
	}
}

// gate compares rep against the baseline report and errors when p50
// latency or throughput regressed by more than maxratio.
func gate(rep *Report, path string, maxratio float64) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(b, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	// Refuse apples-to-oranges comparisons: the gate is only meaningful
	// against a baseline of the same suite.
	if base.Scale != rep.Scale || base.Seed != rep.Seed || !slices.Equal(base.Processors, rep.Processors) {
		return fmt.Errorf("baseline %s is %s scale seed %d p%v; this run is %s scale seed %d p%v",
			path, base.Scale, base.Seed, base.Processors, rep.Scale, rep.Seed, rep.Processors)
	}
	if base.P50LatencyUS > 0 && rep.P50LatencyUS > maxratio*base.P50LatencyUS {
		return fmt.Errorf("p50 latency %.0fµs exceeds %g× baseline %.0fµs",
			rep.P50LatencyUS, maxratio, base.P50LatencyUS)
	}
	if base.SchedulesPerSec > 0 && rep.SchedulesPerSec < base.SchedulesPerSec/maxratio {
		return fmt.Errorf("throughput %.0f schedules/sec below baseline %.0f / %g",
			rep.SchedulesPerSec, base.SchedulesPerSec, maxratio)
	}
	return nil
}

func parsePList(s string) ([]int, error) {
	var ps []int
	for _, part := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || p < 1 {
			return nil, fmt.Errorf("bad processor count %q", part)
		}
		ps = append(ps, p)
	}
	return ps, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "treebench:", err)
	os.Exit(1)
}
