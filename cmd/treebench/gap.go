package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"treesched/internal/exact"
	"treesched/internal/machine"
	"treesched/internal/sched"
	"treesched/internal/tree"
)

// The gap suite is the optimality-gap ledger: it proves optima with the
// exact branch-and-bound on a deterministic population of small trees and
// measures every heuristic against them. Two things are gated against the
// checked-in BENCH_gap.json baseline: the exact solver's throughput
// (proved instances per second, ratcheted by -maxratio) and the
// heuristics' worst observed gap (deterministic, so any growth is a
// behavior change, not noise).

// gapProcs and gapCapFactor fix the machine every gap instance runs on:
// two uniform processors under cap = ceil(2 × M_seq), the setting the
// paper's capped heuristics target.
const (
	gapProcs     = 2
	gapCapFactor = 2.0
)

// gapNodeBudget bounds each exact solve in explored decision nodes, so
// the proved count is a deterministic function of (scale, seed) alone.
const gapNodeBudget int64 = 1 << 20

// gapHeuristics is every runnable scheduler measured against the proven
// optimum. The capped pair runs at the suite cap factor; the rest uncapped.
var gapHeuristics = []sched.HeuristicID{
	sched.IDParSubtrees, sched.IDParSubtreesOptim,
	sched.IDParInnerFirst, sched.IDParDeepestFirst,
	sched.IDParInnerFirstArbitrary,
	sched.IDSequential, sched.IDOptimalSequential,
	sched.IDMemCapped, sched.IDMemCappedBooking,
}

func gapCapFactorFor(id sched.HeuristicID) float64 {
	if id == sched.IDMemCapped || id == sched.IDMemCappedBooking {
		return gapCapFactor
	}
	return 0
}

// GapHeuristicStats is the ledger row of one heuristic.
type GapHeuristicStats struct {
	// WorstGap and MeanGap are makespan ratios vs the proven optimum
	// (1.0 = optimal), over proved instances only.
	WorstGap float64 `json:"worst_gap"`
	MeanGap  float64 `json:"mean_gap"`
	// Optimal counts proved instances where the heuristic's makespan
	// equals the optimum exactly.
	Optimal int `json:"optimal"`
}

// GapReport is the JSON document of the gap suite.
type GapReport struct {
	Suite      string  `json:"suite"`
	Scale      string  `json:"scale"`
	Seed       int64   `json:"seed"`
	Processors int     `json:"processors"`
	CapFactor  float64 `json:"cap_factor"`
	NodeBudget int64   `json:"node_budget"`
	Instances  int     `json:"instances"`
	// Proved counts instances the branch-and-bound closed within the node
	// budget; the gate demands it never decreases.
	Proved        int     `json:"proved"`
	ExploredNodes int64   `json:"explored_nodes"`
	ExactWallMS   float64 `json:"exact_wall_ms"`
	// ProvedPerSec is the throughput ratchet: proved instances per second
	// of exact-solver wall time.
	ProvedPerSec float64                      `json:"proved_per_sec"`
	Heuristics   map[string]GapHeuristicStats `json:"heuristics"`
}

// gapSuite generates the instance population: every tree family at small
// sizes, several seeds per cell, all within the solver's node limit.
func gapSuite(scale string, seed int64) ([]*tree.Tree, error) {
	var sizes []int
	var reps int
	switch scale {
	case "quick":
		sizes, reps = []int{8, 10, 12}, 2
	case "standard":
		sizes, reps = []int{8, 10, 12, 14, 16}, 3
	default:
		return nil, fmt.Errorf("unknown scale %q (quick or standard)", scale)
	}
	rng := rand.New(rand.NewSource(seed))
	ws := tree.WeightSpec{WMin: 1, WMax: 10, NMin: 0, NMax: 5, FMin: 1, FMax: 20}
	families := []func(n int) *tree.Tree{
		func(n int) *tree.Tree { return tree.RandomAttachment(rng, n, ws) },
		func(n int) *tree.Tree { return tree.RandomPrufer(rng, n, ws) },
		func(n int) *tree.Tree { return tree.RandomBinary(rng, n, ws) },
		func(n int) *tree.Tree { return tree.Chain(rng, n, ws) },
		func(n int) *tree.Tree { return tree.Fork(rng, n, ws) },
		func(n int) *tree.Tree { return tree.Caterpillar(rng, n/3, 2, ws) },
	}
	var trees []*tree.Tree
	for _, gen := range families {
		for _, n := range sizes {
			for r := 0; r < reps; r++ {
				trees = append(trees, gen(n))
			}
		}
	}
	return trees, nil
}

func runGapSuite(scale string, seed int64) (*GapReport, error) {
	trees, err := gapSuite(scale, seed)
	if err != nil {
		return nil, err
	}
	m := machine.Uniform(gapProcs)
	rep := &GapReport{
		Suite:      "gap",
		Scale:      scale,
		Seed:       seed,
		Processors: gapProcs,
		CapFactor:  gapCapFactor,
		NodeBudget: gapNodeBudget,
		Instances:  len(trees),
		Heuristics: make(map[string]GapHeuristicStats),
	}
	type acc struct {
		worst, sum float64
		optimal    int
	}
	accs := make(map[sched.HeuristicID]*acc, len(gapHeuristics))
	for _, id := range gapHeuristics {
		accs[id] = &acc{}
	}

	var exactWall time.Duration
	for _, t := range trees {
		pc := sched.NewPrecompute(t)
		cap := exact.CapFromFactor(gapCapFactor, pc.MSeq())
		start := time.Now()
		res, err := exact.SolvePre(pc, m, cap, gapNodeBudget)
		exactWall += time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("exact solve on %s: %w", t, err)
		}
		rep.ExploredNodes += res.Explored
		if !res.Proven {
			continue
		}
		rep.Proved++
		for _, id := range gapHeuristics {
			s, err := pc.RunOn(id, m, gapCapFactorFor(id))
			if err != nil {
				return nil, fmt.Errorf("%v on %s: %w", id, t, err)
			}
			mk := s.Makespan(t)
			if mk < res.Makespan {
				return nil, fmt.Errorf("%v makespan %g beats the proven optimum %g on %s", id, mk, res.Makespan, t)
			}
			a := accs[id]
			gap := mk / res.Makespan
			a.sum += gap
			if gap > a.worst {
				a.worst = gap
			}
			if mk == res.Makespan {
				a.optimal++
			}
		}
	}
	rep.ExactWallMS = float64(exactWall.Microseconds()) / 1000
	if exactWall > 0 {
		rep.ProvedPerSec = float64(rep.Proved) / exactWall.Seconds()
	}
	for _, id := range gapHeuristics {
		a := accs[id]
		st := GapHeuristicStats{Optimal: a.optimal}
		if rep.Proved > 0 {
			st.WorstGap = a.worst
			st.MeanGap = a.sum / float64(rep.Proved)
		}
		rep.Heuristics[id.String()] = st
	}
	return rep, nil
}

func printGapReport(rep *GapReport) {
	fmt.Printf("gap bench: %s scale, %d instances on p=%d, cap %g×M_seq, budget %d nodes\n",
		rep.Scale, rep.Instances, rep.Processors, rep.CapFactor, rep.NodeBudget)
	fmt.Printf("proved %d/%d optima at %.1f instances/sec (%.1f ms exact wall, %d nodes explored)\n\n",
		rep.Proved, rep.Instances, rep.ProvedPerSec, rep.ExactWallMS, rep.ExploredNodes)
	names := make([]string, 0, len(rep.Heuristics))
	for n := range rep.Heuristics {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%-24s %9s %9s %9s\n", "heuristic", "worstGap", "meanGap", "optimal")
	for _, n := range names {
		st := rep.Heuristics[n]
		fmt.Printf("%-24s %9.4f %9.4f %6d/%d\n", n, st.WorstGap, st.MeanGap, st.Optimal, rep.Proved)
	}
}

// gapGate compares rep against a baseline GapReport. The proved count
// must not drop, throughput must stay within maxratio of the baseline,
// and — because the suite is deterministic — no heuristic's worst gap may
// grow beyond float tolerance.
func gapGate(rep *GapReport, path string, maxratio float64) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base GapReport
	if err := json.Unmarshal(b, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	if base.Suite != rep.Suite || base.Scale != rep.Scale || base.Seed != rep.Seed ||
		base.Processors != rep.Processors || base.Instances != rep.Instances ||
		base.NodeBudget != rep.NodeBudget {
		return fmt.Errorf("baseline %s is %s/%s seed %d (%d instances, p=%d, budget %d); this run is %s/%s seed %d (%d instances, p=%d, budget %d)",
			path, base.Suite, base.Scale, base.Seed, base.Instances, base.Processors, base.NodeBudget,
			rep.Suite, rep.Scale, rep.Seed, rep.Instances, rep.Processors, rep.NodeBudget)
	}
	if rep.Proved < base.Proved {
		return fmt.Errorf("proved %d optima, baseline proved %d", rep.Proved, base.Proved)
	}
	if base.ProvedPerSec > 0 && rep.ProvedPerSec < base.ProvedPerSec/maxratio {
		return fmt.Errorf("exact throughput %.1f proved/sec below baseline %.1f / %g",
			rep.ProvedPerSec, base.ProvedPerSec, maxratio)
	}
	const eps = 1e-9 // gaps are deterministic ratios; growth is a real change
	for name, bst := range base.Heuristics {
		st, ok := rep.Heuristics[name]
		if !ok {
			return fmt.Errorf("heuristic %s present in baseline but not in this run", name)
		}
		if st.WorstGap > bst.WorstGap*(1+eps) {
			return fmt.Errorf("heuristic %s worst gap %.9f exceeds baseline %.9f", name, st.WorstGap, bst.WorstGap)
		}
	}
	return nil
}

// gapMain is the -suite gap entry point.
func gapMain(scale string, seed int64, out, baseline string, maxratio float64) {
	rep, err := runGapSuite(scale, seed)
	if err != nil {
		fatal(err)
	}
	printGapReport(rep)
	if out != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", out)
	}
	if baseline != "" {
		if err := gapGate(rep, baseline, maxratio); err != nil {
			fmt.Fprintln(os.Stderr, "treebench: REGRESSION:", err)
			os.Exit(1)
		}
		fmt.Printf("regression gate vs %s passed (maxratio %g)\n", baseline, maxratio)
	}
}
