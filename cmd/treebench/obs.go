package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"treesched/internal/machine"
	"treesched/internal/obs"
	"treesched/internal/resilience"
)

// The obs rows microbenchmark the observability record paths the service
// puts on every request — histogram observe, counter increments, labeled
// child lookup, the span lifecycle — plus the /metrics exposition write.
// They ride in BENCH_core.json next to the scheduler rows (family "obs"),
// so the same CI gate ratchets them; `-suite obs` measures and gates just
// these rows for a fast local check.

// obsBench is one observability micro-row.
type obsBench struct {
	name string
	run  func()
}

// obsBenches builds the observability benches over a private registry
// shaped like the service's: a 16-bucket latency histogram, plain and
// labeled counters, and a trace drawn from the shared span pool per op.
func obsBenches() []obsBench {
	h := obs.NewHistogram("bench_latency", "", 1e-9, obs.ExpBuckets(100_000, 4, 16))
	hx := obs.NewHistogram("bench_latency_ex", "", 1e-9, obs.ExpBuckets(100_000, 4, 16))
	hx.EnableExemplars(obs.DefaultExemplarWindow)
	c := obs.NewCounter("bench_counter", "")
	vec := obs.NewCounterVec("bench_vec", "", "k", false)
	child := vec.With("warm")
	reg := obs.NewRegistry()
	reg.Register(h, c, vec)
	flight := obs.NewFlightRecorder(256, 0, 1)
	ftr := obs.AcquireTrace()
	fid := ftr.Start("stage", obs.RootSpan)
	ftr.End(fid)
	var fseq int
	var tick int64
	adm := resilience.NewAdmission(resilience.AdmissionConfig{
		Capacity: 64, Target: 100 * time.Millisecond,
	})
	brk := resilience.NewBreaker(resilience.BreakerConfig{Failures: 5, Cooldown: 10 * time.Second})
	return []obsBench{
		{"Obs/HistogramObserve", func() {
			tick += 1_000_003
			h.Observe(tick % 100_000_000)
		}},
		{"Obs/ExemplarObserve", func() {
			tick += 1_000_003
			hx.ObserveExemplar(tick%100_000_000, "r1")
		}},
		{"Obs/CounterInc", func() { c.Inc() }},
		{"Obs/CounterVecWith", func() { vec.With("warm").Inc() }},
		{"Obs/CounterChildAdd", func() { child.Add(2) }},
		{"Obs/SpanLifecycle", func() {
			tr := obs.AcquireTrace()
			id := tr.Start("stage", obs.RootSpan)
			tr.End(id)
			tr.Release()
		}},
		{"Obs/FlightRecord", func() {
			// Every record is kept (sampleEvery 1), so the bench covers the
			// slot-claim + span-copy path, rotating request ids from a fixed
			// set to stay allocation-free.
			flight.Record(obs.FlightInfo{
				RequestID: flightRIDs[fseq&3], Endpoint: "/bench", Status: 200,
			}, ftr)
			fseq++
		}},
		{"Obs/Exposition", func() { reg.WriteText(io.Discard) }},
		{"Obs/AdmissionDecision", func() {
			// The full per-request admission round trip: decide, then release
			// the window slot. Sits on every request the daemon accepts, so
			// it must stay allocation-free like the other record paths.
			tick += 1_000_003
			if adm.Admit(tick, resilience.PriorityHigh) == resilience.Admitted {
				adm.Done()
			}
		}},
		{"Obs/BreakerCheck", func() {
			// The closed-breaker fast path checked before every Exact run.
			tick += 1_000_003
			brk.Allow(tick)
		}},
	}
}

// flightRIDs are the pre-built request ids Obs/FlightRecord rotates
// through (building one per op would allocate).
var flightRIDs = [4]string{"r1", "r2", "r3", "r4"}

// measureObsRows runs every obs bench under the budget and returns the
// report rows (family "obs"; Nodes 0 — these are not tree-sized).
func measureObsRows(budget time.Duration) []CoreEntry {
	var out []CoreEntry
	for _, b := range obsBenches() {
		nsOp, allocsOp := measure(b.run, budget)
		e := CoreEntry{Bench: b.name, Family: "obs", NsOp: nsOp, AllocsOp: allocsOp}
		if nsOp > 0 {
			e.OpsPerSec = 1e9 / nsOp
		}
		out = append(out, e)
	}
	return out
}

// obsMain is `-suite obs`: just the observability rows, gated against the
// Obs/* keys of a core baseline (normally BENCH_core.json — the rows live
// there, so there is no separate BENCH_obs.json to drift out of date).
func obsMain(scale string, seed int64, machSpec, out, baseline string, maxratio float64) {
	var budget time.Duration
	switch scale {
	case "quick":
		budget = 25 * time.Millisecond
	case "standard":
		budget = 100 * time.Millisecond
	default:
		fatal(fmt.Errorf("unknown scale %q (quick or standard)", scale))
	}
	het, err := machine.ParseSpec(machSpec)
	if err != nil {
		fatal(err)
	}
	rep := &CoreReport{
		Scale:             scale,
		Seed:              seed,
		Processors:        coreProcs,
		Machine:           het.Spec(),
		Entries:           measureObsRows(budget),
		MeanNsByBench:     make(map[string]float64),
		MeanAllocsByBench: make(map[string]float64),
	}
	fillCoreMeans(rep)
	printCoreReport(rep)
	if out != "" {
		writeReport(rep, out)
	}
	if baseline != "" {
		if err := coreGate(rep, baseline, maxratio); err != nil {
			fmt.Fprintln(os.Stderr, "treebench: REGRESSION:", err)
			os.Exit(1)
		}
		fmt.Printf("regression gate vs %s passed (maxratio %g)\n", baseline, maxratio)
	}
}
