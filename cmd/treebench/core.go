package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"treesched/internal/machine"
	"treesched/internal/sched"
	"treesched/internal/traversal"
	"treesched/internal/tree"
)

// The core suite microbenchmarks the zero-allocation scheduling core —
// Liu's traversals, the rank-keyed list scheduler, the capped schedulers
// and the schedule evaluator — per bench × tree family × size, and
// reports ns/op, allocs/op and ops/sec for each cell. The checked-in
// BENCH_core.json baseline turns it into a CI regression gate for both
// speed and allocation discipline.

// coreProcs is the machine size every scheduler bench uses.
const coreProcs = 8

// stressNodes/stressParts size the large-tree stress rows: at 10⁶ nodes
// the partitioned ParInnerFirst (parts=8) beats the sequential scheduler,
// and both rows are ratcheted in the baseline.
const (
	stressNodes = 1_000_000
	stressParts = 8
)

// CoreEntry is one (bench, family, size) cell.
type CoreEntry struct {
	Bench     string  `json:"bench"`
	Family    string  `json:"family"`
	Nodes     int     `json:"nodes"`
	NsOp      float64 `json:"ns_op"`
	AllocsOp  float64 `json:"allocs_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// CoreReport is the JSON document of the core suite.
type CoreReport struct {
	Scale      string `json:"scale"`
	Seed       int64  `json:"seed"`
	Processors int    `json:"processors"`
	// Machine is the canonical heterogeneous spec of the */het rows, which
	// benchmark the speed-aware scheduler paths on a related-machines
	// model of the same processor count.
	Machine string      `json:"machine"`
	Entries []CoreEntry `json:"entries"`
	// SchedulesPerSec aggregates the scheduler benches (ParSubtrees,
	// ParInnerFirst, ParDeepestFirst, Sequential, MemCappedBooking):
	// schedules produced per second of pure scheduling time.
	SchedulesPerSec float64 `json:"schedules_per_sec"`
	// MeanNsByBench and MeanAllocsByBench are the geometric means per
	// bench across families and sizes — the regression-gate keys.
	MeanNsByBench     map[string]float64 `json:"mean_ns_by_bench"`
	MeanAllocsByBench map[string]float64 `json:"mean_allocs_by_bench"`
}

// schedulerBenches are the benches counted into SchedulesPerSec.
var schedulerBenches = map[string]bool{
	"ParSubtrees":      true,
	"ParInnerFirst":    true,
	"ParDeepestFirst":  true,
	"Sequential":       true,
	"MemCappedBooking": true,
}

func coreMain(scale string, seed int64, machSpec, out, baseline string, maxratio float64) {
	var sizes []int
	var budget time.Duration
	switch scale {
	case "quick":
		sizes, budget = []int{1_000, 10_000}, 25*time.Millisecond
	case "standard":
		sizes, budget = []int{10_000, 100_000}, 100*time.Millisecond
	default:
		fatal(fmt.Errorf("unknown scale %q (quick or standard)", scale))
	}
	het, err := machine.ParseSpec(machSpec)
	if err != nil {
		fatal(err)
	}
	if het.P() != coreProcs {
		fatal(fmt.Errorf("core suite -machine must declare %d processors to compare against the uniform rows, got %d", coreProcs, het.P()))
	}
	rep := &CoreReport{
		Scale:             scale,
		Seed:              seed,
		Processors:        coreProcs,
		Machine:           het.Spec(),
		MeanNsByBench:     make(map[string]float64),
		MeanAllocsByBench: make(map[string]float64),
	}

	rng := rand.New(rand.NewSource(seed))
	ws := tree.WeightSpec{WMin: 1, WMax: 10, NMin: 0, NMax: 5, FMin: 1, FMax: 20}
	families := []struct {
		name string
		gen  func(n int) *tree.Tree
	}{
		{"attachment", func(n int) *tree.Tree { return tree.RandomAttachment(rng, n, ws) }},
		{"binary", func(n int) *tree.Tree { return tree.RandomBinary(rng, n, ws) }},
		{"chain", func(n int) *tree.Tree { return tree.Chain(rng, n, ws) }},
		{"fork", func(n int) *tree.Tree { return tree.Fork(rng, n, ws) }},
		{"caterpillar", func(n int) *tree.Tree { return tree.Caterpillar(rng, n/4, 3, ws) }},
	}

	// pcCache backs the */batch rows: the cross-request Precompute cache in
	// its steady state (every benched tree resident), so the row measures a
	// warm Get — the repeat-request path the service serves.
	pcCache := sched.NewPrecomputeCache(1 << 30)

	var schedOps, schedNs float64
	for _, fam := range families {
		for _, n := range sizes {
			t := fam.gen(n)
			pc := sched.NewPrecompute(t) // shared, warm — the service's steady state
			cacheKey := fmt.Sprintf("%s/%d", fam.name, n)
			pcCache.Add(cacheKey, pc)
			cap2 := 2 * pc.MSeq()
			sPeak, err := pc.ParInnerFirst(coreProcs)
			if err != nil {
				fatal(err)
			}
			sSim := cloneSchedule(sPeak)
			sSim.Invalidate() // force the event-replay path of PeakMemory
			sHet, err := pc.ParInnerFirstOn(het)
			if err != nil {
				fatal(err)
			}
			benches := []struct {
				name string
				run  func()
			}{
				{"Precompute", func() { sched.NewPrecompute(t) }},
				{"Precompute/batch", func() {
					if _, ok := pcCache.Get(cacheKey); !ok {
						fatal(fmt.Errorf("warm Precompute cache missed %s", cacheKey))
					}
				}},
				{"BestPostOrder", func() { traversal.BestPostOrder(t) }},
				{"OptimalTraversal", func() { traversal.Optimal(t) }},
				{"ParSubtrees", func() { mustRun(pc.ParSubtrees(coreProcs)) }},
				{"ParInnerFirst", func() { mustRun(pc.ParInnerFirst(coreProcs)) }},
				{"ParInnerFirst/partitioned", func() { mustRun(pc.PartitionedInnerFirst(coreProcs, 4)) }},
				{"ParDeepestFirst", func() { mustRun(pc.ParDeepestFirst(coreProcs)) }},
				{"Sequential", func() { mustRun(sched.SequentialSchedule(t, pc.Order())) }},
				{"MemCappedBooking", func() { mustRun(pc.MemCappedBooking(coreProcs, cap2)) }},
				{"PeakMemory", func() { sched.PeakMemory(t, sSim) }},
				{"Evaluate", func() { mustEval(t, sPeak) }},
				// Heterogeneous rows: the same hot paths with speed-aware
				// processor picks and scaled durations, gated alongside the
				// uniform rows.
				{"ParSubtrees/het", func() { mustRun(pc.ParSubtreesOn(het)) }},
				{"ParInnerFirst/het", func() { mustRun(pc.ParInnerFirstOn(het)) }},
				{"ParDeepestFirst/het", func() { mustRun(pc.ParDeepestFirstOn(het)) }},
				{"MemCappedBooking/het", func() { mustRun(pc.MemCappedBookingOn(het, cap2)) }},
				{"Evaluate/het", func() { mustEval(t, sHet) }},
			}
			for _, b := range benches {
				nsOp, allocsOp := measure(b.run, budget)
				e := CoreEntry{Bench: b.name, Family: fam.name, Nodes: t.Len(), NsOp: nsOp, AllocsOp: allocsOp}
				if nsOp > 0 {
					e.OpsPerSec = 1e9 / nsOp
				}
				rep.Entries = append(rep.Entries, e)
				if schedulerBenches[b.name] {
					schedOps++
					schedNs += nsOp
				}
			}
		}
	}
	// Stress rows: one 10⁶-node tree pins the partitioned scheduler's
	// large-tree win. At this size the heap-driven σ-order loop dominates
	// sequential ParInnerFirst, and the partitioned path — which fills each
	// subtree work-package in linear time — must come out ahead. Both rows
	// are ratcheted so neither the sequential core nor the partitioned win
	// can regress silently.
	stressT := tree.RandomAttachment(rng, stressNodes, ws)
	stressPC := sched.NewPrecompute(stressT)
	var stressNs [2]float64
	for i, b := range []struct {
		name string
		run  func()
	}{
		{"ParInnerFirst/stress1M", func() { mustRun(stressPC.ParInnerFirst(coreProcs)) }},
		{"ParInnerFirst/partitioned/stress1M", func() { mustRun(stressPC.PartitionedInnerFirst(coreProcs, stressParts)) }},
	} {
		nsOp, allocsOp := measure(b.run, budget)
		e := CoreEntry{Bench: b.name, Family: "attachment", Nodes: stressT.Len(), NsOp: nsOp, AllocsOp: allocsOp}
		if nsOp > 0 {
			e.OpsPerSec = 1e9 / nsOp
		}
		rep.Entries = append(rep.Entries, e)
		stressNs[i] = nsOp
	}
	if stressNs[1] > 0 {
		fmt.Printf("stress 1M nodes: partitioned(parts=%d) %.2fx sequential ParInnerFirst\n",
			stressParts, stressNs[0]/stressNs[1])
	}

	// The observability record paths ride along: they are on every service
	// request, so they are ratcheted with the scheduling core.
	rep.Entries = append(rep.Entries, measureObsRows(budget)...)
	if schedNs > 0 {
		rep.SchedulesPerSec = schedOps * 1e9 / schedNs
	}
	fillCoreMeans(rep)
	printCoreReport(rep)

	if out != "" {
		writeReport(rep, out)
	}
	if baseline != "" {
		if err := coreGate(rep, baseline, maxratio); err != nil {
			fmt.Fprintln(os.Stderr, "treebench: REGRESSION:", err)
			os.Exit(1)
		}
		fmt.Printf("regression gate vs %s passed (maxratio %g)\n", baseline, maxratio)
	}
}

// writeReport writes rep as indented JSON to out.
func writeReport(rep *CoreReport, out string) {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}

// measure times f in adaptively doubled batches until the budget is spent,
// reporting steady-state ns/op and allocs/op (one warmup run excluded).
func measure(f func(), budget time.Duration) (nsOp, allocsOp float64) {
	f() // warmup: fill pools, fault in pages
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	batch := 1
	var elapsed time.Duration
	for {
		for i := 0; i < batch; i++ {
			f()
		}
		iters += batch
		elapsed = time.Since(start)
		if elapsed >= budget {
			break
		}
		if batch < 1024 {
			batch *= 2
		}
	}
	runtime.ReadMemStats(&after)
	return float64(elapsed.Nanoseconds()) / float64(iters),
		float64(after.Mallocs-before.Mallocs) / float64(iters)
}

func cloneSchedule(s *sched.Schedule) *sched.Schedule {
	return &sched.Schedule{
		Start: append([]float64(nil), s.Start...),
		Proc:  append([]int(nil), s.Proc...),
		P:     s.P,
	}
}

func mustRun(s *sched.Schedule, err error) {
	if err != nil {
		fatal(err)
	}
}

func mustEval(t *tree.Tree, s *sched.Schedule) {
	if _, _, err := sched.Evaluate(t, s); err != nil {
		fatal(err)
	}
}

// fillCoreMeans computes the per-bench geometric means (ns, and allocs
// offset by one so zero-alloc cells stay finite) — the gate keys; the
// geomean weighs every cell equally across sizes.
func fillCoreMeans(rep *CoreReport) {
	logs := make(map[string][2]float64)
	counts := make(map[string]int)
	for _, e := range rep.Entries {
		l := logs[e.Bench]
		l[0] += math.Log(math.Max(e.NsOp, 1))
		l[1] += math.Log(e.AllocsOp + 1)
		logs[e.Bench] = l
		counts[e.Bench]++
	}
	for b, l := range logs {
		c := float64(counts[b])
		rep.MeanNsByBench[b] = math.Exp(l[0] / c)
		rep.MeanAllocsByBench[b] = math.Exp(l[1]/c) - 1
	}
}

func printCoreReport(rep *CoreReport) {
	fmt.Printf("core bench: %s scale, p=%d, %d cells  |  %.0f schedules/sec aggregate\n",
		rep.Scale, rep.Processors, len(rep.Entries), rep.SchedulesPerSec)
	names := make([]string, 0, len(rep.MeanNsByBench))
	for b := range rep.MeanNsByBench {
		names = append(names, b)
	}
	sort.Strings(names)
	fmt.Printf("  %-18s %12s %12s\n", "bench", "geomean ns", "allocs/op")
	for _, b := range names {
		fmt.Printf("  %-18s %12.0f %12.2f\n", b, rep.MeanNsByBench[b], rep.MeanAllocsByBench[b])
	}
}

// coreGate compares per-bench geomean ns/op and allocs/op plus the
// aggregate scheduling throughput against the baseline report.
func coreGate(rep *CoreReport, path string, maxratio float64) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base CoreReport
	if err := json.Unmarshal(b, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	if base.Scale != rep.Scale || base.Seed != rep.Seed || base.Processors != rep.Processors {
		return fmt.Errorf("baseline %s is %s scale seed %d p%d; this run is %s scale seed %d p%d",
			path, base.Scale, base.Seed, base.Processors, rep.Scale, rep.Seed, rep.Processors)
	}
	if base.Machine != "" && base.Machine != rep.Machine {
		return fmt.Errorf("baseline %s benchmarks machine %q; this run used %q", path, base.Machine, rep.Machine)
	}
	for bench, baseNs := range base.MeanNsByBench {
		if ns, ok := rep.MeanNsByBench[bench]; ok && baseNs > 0 && ns > maxratio*baseNs {
			return fmt.Errorf("%s geomean %.0f ns/op exceeds %g× baseline %.0f", bench, ns, maxratio, baseNs)
		}
	}
	for bench, baseAllocs := range base.MeanAllocsByBench {
		if a, ok := rep.MeanAllocsByBench[bench]; ok && a+1 > maxratio*(baseAllocs+1) {
			return fmt.Errorf("%s allocs/op %.2f exceeds %g× baseline %.2f", bench, a, maxratio, baseAllocs)
		}
	}
	// SchedulesPerSec is only comparable when this run measured the
	// scheduler rows (the obs suite does not).
	if base.SchedulesPerSec > 0 && rep.SchedulesPerSec > 0 && rep.SchedulesPerSec < base.SchedulesPerSec/maxratio {
		return fmt.Errorf("aggregate %.0f schedules/sec below baseline %.0f / %g",
			rep.SchedulesPerSec, base.SchedulesPerSec, maxratio)
	}
	return nil
}
