// Command treesched schedules a tree task graph (in the treegen format) on
// p processors with the paper's heuristics and reports makespan and peak
// memory against the lower bounds.
//
// Usage:
//
//	treesched -in tree.txt -p 8                  # all four heuristics
//	treesched -in tree.txt -p 8 -heuristic ParDeepestFirst
//	treesched -in tree.txt -p 8 -memcap 2.0      # + memory-capped run at 2×M_seq
//	treesched -in tree.txt -p 8 -portfolio       # race the portfolio, pick min_makespan
//	treesched -in tree.txt -p 8 -objective makespan_under_memcap:1.5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"treesched/internal/portfolio"
	"treesched/internal/sched"
	"treesched/internal/traversal"
	"treesched/internal/tree"
)

func main() {
	var (
		in        = flag.String("in", "", "input tree file (treegen format); required")
		p         = flag.Int("p", 2, "number of processors")
		name      = flag.String("heuristic", "all", "heuristic name or 'all'")
		memcap    = flag.Float64("memcap", 0, "if > 0, also run the memory-capped schedulers with cap = memcap × M_seq")
		gantt     = flag.Bool("gantt", false, "print an ASCII Gantt chart per heuristic (small trees)")
		runPort   = flag.Bool("portfolio", false, "race the paper's four heuristics + Sequential concurrently; print the Pareto frontier and the -objective winner")
		objective = flag.String("objective", "", "portfolio selection objective (min_makespan, min_memory, makespan_under_memcap:F, memory_under_deadline:D, weighted:A); implies -portfolio")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "treesched: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	t, err := tree.Decode(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	msLB := sched.MakespanLowerBound(t, *p)
	memLB := sched.MemoryLowerBound(t)
	opt := traversal.Optimal(t)
	fmt.Printf("tree: %d nodes, %d leaves, height %d, max degree %d\n",
		t.Len(), t.NumLeaves(), t.Height(), t.MaxDegree())
	fmt.Printf("p=%d  makespan LB %.6g  sequential postorder memory %d  optimal sequential memory %d\n\n",
		*p, msLB, memLB, opt.Peak)

	if *runPort || *objective != "" {
		runPortfolio(t, *p, *objective, *memcap)
		return
	}

	var hs []sched.Heuristic
	if *name == "all" {
		hs = sched.Heuristics()
	} else {
		h, ok := sched.ByName(*name)
		if !ok {
			fatal(fmt.Errorf("unknown heuristic %q", *name))
		}
		hs = []sched.Heuristic{h}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "heuristic\tmakespan\tms/LB\tmemory\tmem/Mseq\tutilization")
	var charts []string
	for _, h := range hs {
		s, err := h.Run(t, *p)
		if err != nil {
			fatal(err)
		}
		if err := s.Validate(t); err != nil {
			fatal(fmt.Errorf("%s produced an invalid schedule: %w", h.Name, err))
		}
		report(w, h.Name, t, s, msLB, memLB)
		if *gantt {
			charts = append(charts, h.Name+"\n"+sched.GanttString(t, s, 100))
		}
	}
	if *memcap > 0 {
		cap := int64(*memcap * float64(memLB))
		s, err := sched.MemCapped(t, *p, cap)
		if err != nil {
			fatal(err)
		}
		report(w, fmt.Sprintf("MemCapped(%.2g×)", *memcap), t, s, msLB, memLB)
		s, err = sched.MemCappedBooking(t, *p, cap)
		if err != nil {
			fatal(err)
		}
		report(w, fmt.Sprintf("MemCappedBooking(%.2g×)", *memcap), t, s, msLB, memLB)
	}
	w.Flush()
	for _, c := range charts {
		fmt.Println("\n" + c)
	}
}

// runPortfolio races the default candidate set (plus the memory-capped
// schedulers when -memcap is given) and reports every candidate with its
// frontier membership and the objective-selected winner.
func runPortfolio(t *tree.Tree, p int, objSpec string, memcap float64) {
	obj := portfolio.MinMakespan()
	if objSpec != "" {
		var err error
		obj, err = portfolio.ParseObjective(objSpec)
		if err != nil {
			fatal(err)
		}
	}
	opts := portfolio.Options{Options: sched.Options{Processors: p}}
	if memcap > 0 {
		opts.Heuristics = append(portfolio.DefaultCandidates(), sched.IDMemCapped, sched.IDMemCappedBooking)
		opts.MemCapFactor = memcap
	}
	res, err := portfolio.Run(context.Background(), t, obj, opts)
	if err != nil {
		fatal(err)
	}
	var sum float64
	for _, c := range res.Candidates {
		sum += c.Elapsed.Seconds()
	}
	fmt.Printf("portfolio: %d candidates raced in %v (sum of candidate times %.3gs), objective %s\n\n",
		len(res.Candidates), res.Elapsed, sum, res.Objective)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "heuristic\tmakespan\tms/LB\tmemory\tmem/Mseq\telapsed\t")
	for i, c := range res.Candidates {
		if c.Err != nil {
			fmt.Fprintf(w, "%s\terror: %v\t\t\t\t\t\n", c.ID, c.Err)
			continue
		}
		mark := ""
		if res.OnFrontier(i) {
			mark = "pareto"
		}
		if i == res.Winner {
			mark += " winner"
		}
		fmt.Fprintf(w, "%s\t%.6g\t%.3f\t%d\t%.3f\t%v\t%s\n",
			c.ID, c.Makespan, c.MakespanRatio, c.PeakMemory, c.MemoryRatio, c.Elapsed, mark)
	}
	w.Flush()
	if win, ok := res.WinnerCandidate(); ok {
		fmt.Printf("\nwinner under %s: %s (makespan %.6g, memory %d)\n",
			res.Objective, win.ID, win.Makespan, win.PeakMemory)
	} else {
		fmt.Println("\nno winner: every candidate failed")
	}
}

func report(w *tabwriter.Writer, name string, t *tree.Tree, s *sched.Schedule, msLB float64, memLB int64) {
	ms := s.Makespan(t)
	mem := sched.PeakMemory(t, s)
	fmt.Fprintf(w, "%s\t%.6g\t%.3f\t%d\t%.3f\t%.2f\n",
		name, ms, ms/msLB, mem, float64(mem)/float64(memLB), sched.Utilization(t, s))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "treesched:", err)
	os.Exit(1)
}
