// Command treesched schedules a tree task graph (in the treegen format) on
// p processors with the paper's heuristics and reports makespan and peak
// memory against the lower bounds.
//
// Usage:
//
//	treesched -in tree.txt -p 8                  # all four heuristics
//	treesched -in tree.txt -p 8 -heuristic ParDeepestFirst
//	treesched -in tree.txt -p 2 -heuristic Exact -budget 500k  # exact branch-and-bound (small trees)
//	treesched -in tree.txt -machine 2x1.0+2x0.5  # heterogeneous (related) processors
//	treesched -in tree.txt -p 8 -memcap 2.0      # + memory-capped run at 2×M_seq
//	treesched -in tree.txt -p 8 -partitions 8    # + partitioned ParInnerFirst row
//	treesched -in tree.txt -p 8 -portfolio       # race the portfolio, pick min_makespan
//	treesched -in tree.txt -p 8 -objective makespan_under_memcap:1.5
//	treesched -in tree.txt -p 8 -portfolio -trace  # print the stage span tree
//	treesched -in tree.txt -p 8 -timeline out.json # schedule as a Perfetto timeline
//	treesched -forest trace.ndjson -p 8 -policy sjf -capfactor 2
//	treesched -forest trace.ndjson -p 8 -timeline out.json  # one Perfetto track per job
//	treesched -forest trace.ndjson -machine 2x1.0+2x0.5 -policy sjf
//
// The -forest mode simulates an NDJSON job trace (see `treegen -forest`)
// on one shared p-processor machine under a global memory cap, with
// cross-tree memory booking and the selected admission policy; it prints
// per-job latency/stretch and the run summary.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"treesched/internal/exact"
	"treesched/internal/forest"
	"treesched/internal/machine"
	"treesched/internal/obs"
	"treesched/internal/portfolio"
	"treesched/internal/sched"
	"treesched/internal/traversal"
	"treesched/internal/tree"
)

func main() {
	var (
		in        = flag.String("in", "", "input tree file (treegen format); required")
		p         = flag.Int("p", 2, "number of processors")
		machSpec  = flag.String("machine", "", `machine spec ("4" or "2x1.0+2x0.5" for heterogeneous speeds); overrides -p`)
		name      = flag.String("heuristic", "all", "heuristic name, 'all', or 'Exact' for the branch-and-bound solver (small trees)")
		memcap    = flag.Float64("memcap", 0, "if > 0, also run the memory-capped schedulers with cap = memcap × M_seq (with -heuristic Exact: the solver's cap; 0 = no cap)")
		parts     = flag.Int("partitions", 0, "if > 1, also run ParInnerFirst through the partitioned scheduler with this many subtree work-packages")
		budget    = flag.String("budget", "", `exact-solver node budget, e.g. "500k" or "2M" (only with -heuristic Exact; empty = default)`)
		gantt     = flag.Bool("gantt", false, "print an ASCII Gantt chart per heuristic (small trees)")
		runPort   = flag.Bool("portfolio", false, "race the paper's four heuristics + Sequential concurrently; print the Pareto frontier and the -objective winner")
		objective = flag.String("objective", "", "portfolio selection objective (min_makespan, min_memory, makespan_under_memcap:F, memory_under_deadline:D, weighted:A); implies -portfolio")
		doTrace   = flag.Bool("trace", false, "record stage spans (schedule, evaluate, per candidate) and print the span tree after the results")
		timeline  = flag.String("timeline", "", "write the executed schedule as Chrome Trace Event Format JSON to this file (open in ui.perfetto.dev); in portfolio mode the winner's schedule, in forest mode one track per job")

		forestIn  = flag.String("forest", "", "NDJSON forest trace to simulate on the shared machine (see treegen -forest)")
		policy    = flag.String("policy", "fifo", "forest admission policy: fifo|sjf|smallest_mseq|weighted_fair")
		mem       = flag.Int64("mem", 0, "forest absolute global memory cap (0: use -capfactor)")
		capFactor = flag.Float64("capfactor", 2, "forest memory cap as a multiple of the trace's largest M_seq (when -mem is 0)")
	)
	flag.Parse()
	var mach *machine.Model
	if *machSpec != "" {
		var err error
		mach, err = machine.ParseSpec(*machSpec)
		if err != nil {
			fatal(err)
		}
		*p = mach.P()
	} else {
		if *p < 1 {
			fatal(fmt.Errorf("p must be >= 1, got %d", *p))
		}
		mach = machine.Uniform(*p)
	}
	if *forestIn != "" {
		runForest(*forestIn, mach, *policy, *mem, *capFactor, *timeline)
		return
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "treesched: one of -in and -forest is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	t, err := tree.Decode(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	msLB := sched.MakespanLowerBoundOn(t, mach)
	memLB := sched.MemoryLowerBound(t)
	opt := traversal.Optimal(t)
	fmt.Printf("tree: %d nodes, %d leaves, height %d, max degree %d\n",
		t.Len(), t.NumLeaves(), t.Height(), t.MaxDegree())
	fmt.Printf("machine %s (p=%d)  makespan LB %.6g  sequential postorder memory %d  optimal sequential memory %d\n\n",
		mach.Spec(), *p, msLB, memLB, opt.Peak)

	var tr *obs.Trace
	if *doTrace {
		tr = obs.AcquireTrace()
		defer tr.Release()
	}
	if *runPort || *objective != "" {
		runPortfolio(t, mach, *objective, *memcap, tr, *timeline)
		return
	}
	if *name == sched.IDExact.String() {
		runExact(t, mach, *memcap, *budget, msLB, memLB, tr, *timeline)
		return
	}

	var hs []sched.Heuristic
	if *name == "all" {
		hs = sched.Heuristics()
	} else {
		h, ok := sched.ByName(*name)
		if !ok {
			fatal(fmt.Errorf("unknown heuristic %q (known: %s; MemCapped/MemCappedBooking need -memcap, Auto needs -portfolio)",
				*name, strings.Join(sched.HeuristicNames(), ", ")))
		}
		hs = []sched.Heuristic{h}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "heuristic\tmakespan\tms/LB\tmemory\tmem/Mseq\tutilization")
	var charts []string
	timelineDone := false
	for _, h := range hs {
		cid := obs.RootSpan
		if tr != nil {
			cid = tr.Start("candidate:"+h.Name, obs.RootSpan)
		}
		sid := tr.Start("schedule", cid)
		s, err := h.RunOn(t, mach)
		tr.End(sid)
		if err != nil {
			fatal(err)
		}
		eid := tr.Start("evaluate", cid)
		if err := s.Validate(t); err != nil {
			fatal(fmt.Errorf("%s produced an invalid schedule: %w", h.Name, err))
		}
		report(w, h.Name, t, s, msLB, memLB)
		tr.End(eid)
		tr.End(cid)
		if *gantt {
			charts = append(charts, h.Name+"\n"+sched.GanttString(t, s, 100))
		}
		// The first heuristic's schedule is the one -timeline renders
		// (with -heuristic <name> that is the selected heuristic); written
		// now, before the next run can recycle the pooled scratch.
		if *timeline != "" && !timelineDone {
			writeTimeline(*timeline, t, s, h.Name, memCapOf(*memcap, memLB))
			timelineDone = true
		}
	}
	if *parts > 1 {
		// Extra row, like the -memcap rows below: the partitioned
		// ParInnerFirst next to the sequential heuristics it approximates.
		pc := sched.NewPrecompute(t)
		s, err := pc.PartitionedInnerFirstOn(mach, *parts)
		if err != nil {
			fatal(err)
		}
		if err := s.Validate(t); err != nil {
			fatal(fmt.Errorf("partitioned ParInnerFirst produced an invalid schedule: %w", err))
		}
		report(w, fmt.Sprintf("ParInnerFirst(parts=%d)", *parts), t, s, msLB, memLB)
	}
	if *memcap > 0 {
		pc := sched.NewPrecompute(t)
		cap := int64(*memcap * float64(memLB))
		s, err := pc.MemCappedOn(mach, cap)
		if err != nil {
			fatal(err)
		}
		report(w, fmt.Sprintf("MemCapped(%.2g×)", *memcap), t, s, msLB, memLB)
		s, err = pc.MemCappedBookingOn(mach, cap)
		if err != nil {
			fatal(err)
		}
		report(w, fmt.Sprintf("MemCappedBooking(%.2g×)", *memcap), t, s, msLB, memLB)
	}
	w.Flush()
	for _, c := range charts {
		fmt.Println("\n" + c)
	}
	printTrace(tr)
}

// memCapOf resolves the timeline's memory-counter cap series: the -memcap
// factor × M_seq, or 0 (no cap series) for uncapped runs.
func memCapOf(factor float64, memSeq int64) int64 {
	if factor <= 0 {
		return 0
	}
	return int64(factor * float64(memSeq))
}

// writeTimeline renders one schedule as Chrome Trace Event Format JSON at
// path — the -timeline output, loadable in ui.perfetto.dev or
// chrome://tracing.
func writeTimeline(path string, t *tree.Tree, s *sched.Schedule, name string, memCap int64) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	err = sched.WriteChromeTrace(f, t, s, sched.ChromeTraceOptions{Name: name, MemCap: memCap})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "treesched: timeline (%s) written to %s — open in ui.perfetto.dev\n", name, path)
}

// printTrace prints the recorded span tree, indented by depth, with per-
// span duration and the span value (the exact solver's explored-node
// count) when one was recorded. No-op without -trace.
func printTrace(tr *obs.Trace) {
	if tr == nil {
		return
	}
	root := tr.Tree()
	if root == nil {
		return
	}
	fmt.Println("\ntrace:")
	root.Walk(func(n *obs.SpanNode, depth int) {
		fmt.Printf("%s%s %.1fµs", strings.Repeat("  ", depth+1), n.Name, n.DurUS)
		if n.Value != 0 {
			fmt.Printf(" (value %d)", n.Value)
		}
		fmt.Println()
	})
}

// runExact runs the branch-and-bound solver: proven-optimal makespan
// under the -memcap cap (a factor of M_seq; 0 = no cap) within the
// -budget node budget, or the best schedule found when the budget runs
// out first.
func runExact(t *tree.Tree, mach *machine.Model, memcap float64, budgetSpec string, msLB float64, memLB int64, tr *obs.Trace, timeline string) {
	nodes := exact.DefaultNodeBudget
	if budgetSpec != "" {
		var err error
		nodes, err = exact.ParseBudget(budgetSpec)
		if err != nil {
			fatal(err)
		}
	}
	memCap := exact.CapFromFactor(memcap, memLB)
	sid := tr.Start("solve", obs.RootSpan)
	res, err := exact.Solve(t, mach, memCap, nodes)
	tr.End(sid)
	if err != nil {
		fatal(err)
	}
	tr.SetValue(sid, res.Explored)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "heuristic\tmakespan\tms/LB\tmemory\tmem/Mseq\tutilization")
	report(w, "Exact", t, res.Schedule, msLB, memLB)
	w.Flush()
	if timeline != "" {
		writeTimeline(timeline, t, res.Schedule, "Exact", memCapOf(memcap, memLB))
	}
	if res.Proven {
		fmt.Printf("\nexact: proven optimal (explored %d nodes, pruned %d, memo hits %d, lower bound %.6g)\n",
			res.Explored, res.Pruned, res.MemoHits, res.LowerBound)
	} else {
		fmt.Printf("\nexact: node budget %d exhausted — best schedule found, NOT proven optimal (explored %d, pruned %d, memo hits %d, lower bound %.6g)\n",
			nodes, res.Explored, res.Pruned, res.MemoHits, res.LowerBound)
	}
	printTrace(tr)
}

// runPortfolio races the default candidate set (plus the memory-capped
// schedulers when -memcap is given) and reports every candidate with its
// frontier membership and the objective-selected winner.
func runPortfolio(t *tree.Tree, mach *machine.Model, objSpec string, memcap float64, tr *obs.Trace, timeline string) {
	obj := portfolio.MinMakespan()
	if objSpec != "" {
		var err error
		obj, err = portfolio.ParseObjective(objSpec)
		if err != nil {
			fatal(err)
		}
	}
	opts := portfolio.Options{Options: sched.Options{Machine: mach},
		Trace: tr, TraceParent: obs.RootSpan}
	if memcap > 0 {
		opts.Heuristics = append(portfolio.DefaultCandidates(), sched.IDMemCapped, sched.IDMemCappedBooking)
		opts.MemCapFactor = memcap
	}
	res, err := portfolio.Run(context.Background(), t, obj, opts)
	if err != nil {
		fatal(err)
	}
	var sum float64
	for _, c := range res.Candidates {
		sum += c.Elapsed.Seconds()
	}
	fmt.Printf("portfolio: %d candidates raced in %v (sum of candidate times %.3gs), objective %s\n\n",
		len(res.Candidates), res.Elapsed, sum, res.Objective)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "heuristic\tmakespan\tms/LB\tmemory\tmem/Mseq\telapsed\t")
	for i, c := range res.Candidates {
		if c.Err != nil {
			fmt.Fprintf(w, "%s\terror: %v\t\t\t\t\t\n", c.ID, c.Err)
			continue
		}
		mark := ""
		if res.OnFrontier(i) {
			mark = "pareto"
		}
		if i == res.Winner {
			mark += " winner"
		}
		fmt.Fprintf(w, "%s\t%.6g\t%.3f\t%d\t%.3f\t%v\t%s\n",
			c.ID, c.Makespan, c.MakespanRatio, c.PeakMemory, c.MemoryRatio, c.Elapsed, mark)
	}
	w.Flush()
	if win, ok := res.WinnerCandidate(); ok {
		fmt.Printf("\nwinner under %s: %s (makespan %.6g, memory %d)\n",
			res.Objective, win.ID, win.Makespan, win.PeakMemory)
		// The race only keeps metrics, so -timeline re-runs the winner
		// deterministically to obtain its schedule. Exact's schedule is
		// not re-derivable through the heuristic interface.
		if timeline != "" && win.ID != sched.IDExact {
			wopts := sched.Options{Machine: mach, Heuristics: []sched.HeuristicID{win.ID}, MemCapFactor: memcap}
			hs, _, err := wopts.SelectFor(t)
			if err != nil {
				fatal(err)
			}
			s, err := hs[0].RunOn(t, mach)
			if err != nil {
				fatal(err)
			}
			writeTimeline(timeline, t, s, win.ID.String(), memCapOf(memcap, res.MemorySeq))
		}
	} else {
		fmt.Println("\nno winner: every candidate failed")
	}
	printTrace(tr)
}

// runForest simulates an NDJSON job trace on one shared machine and
// prints per-job results plus the run summary.
func runForest(path string, mach *machine.Model, policyName string, mem int64, capFactor float64, timeline string) {
	pol, err := forest.ParsePolicy(policyName)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	jobs, err := forest.DecodeTrace(f, forest.DecodeLimits{})
	f.Close()
	if err != nil {
		fatal(err)
	}
	res, err := forest.Run(context.Background(), jobs, forest.Config{
		Machine:      mach,
		MemCap:       mem,
		MemCapFactor: capFactor,
		Policy:       pol,
		Timeline:     timeline != "",
	})
	if err != nil {
		fatal(err)
	}
	if timeline != "" {
		f, err := os.Create(timeline)
		if err != nil {
			fatal(err)
		}
		err = res.WriteChromeTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "treesched: forest timeline (%d jobs) written to %s — open in ui.perfetto.dev\n",
			len(res.Timeline.JobIDs), timeline)
	}
	s := res.Summary
	fmt.Printf("forest: %d jobs on machine %s (p=%d), policy %s, memory cap %d\n",
		s.Jobs, mach.Spec(), s.Processors, s.Policy, s.MemCap)
	fmt.Printf("completed %d  rejected %d  makespan %.6g  utilization %.3f  peak resident %d (%.1f%% of cap)\n",
		s.Completed, s.Rejected, s.Makespan, s.Utilization, s.PeakResident, 100*float64(s.PeakResident)/float64(s.MemCap))
	fmt.Printf("latency mean %.6g p50 %.6g p99 %.6g  |  stretch mean %.3f max %.3f  |  wait mean %.6g\n",
		s.MeanLatency, s.P50Latency, s.P99Latency, s.MeanStretch, s.MaxStretch, s.MeanWait)
	fmt.Printf("tasks executed %d  max queued %d  max running %d\n\n", s.TasksExecuted, s.MaxQueued, s.MaxRunning)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "job\tstatus\tnodes\tplanned_by\tarrival\tstart\tfinish\twait\tlatency\tstretch")
	for _, jr := range res.Jobs {
		if jr.Status != forest.StatusCompleted {
			fmt.Fprintf(w, "%s\t%s: %s\t%d\t\t%.6g\t\t\t\t\t\n", jr.ID, jr.Status, jr.Reason, jr.Nodes, jr.Arrival)
			continue
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%.6g\t%.6g\t%.6g\t%.6g\t%.6g\t%.3f\n",
			jr.ID, jr.Status, jr.Nodes, jr.PlannedBy, jr.Arrival, jr.Start, jr.Finish, jr.Wait, jr.Latency, jr.Stretch)
	}
	w.Flush()
}

func report(w *tabwriter.Writer, name string, t *tree.Tree, s *sched.Schedule, msLB float64, memLB int64) {
	ms := s.Makespan(t)
	mem := sched.PeakMemory(t, s)
	fmt.Fprintf(w, "%s\t%.6g\t%.3f\t%d\t%.3f\t%.2f\n",
		name, ms, ms/msLB, mem, float64(mem)/float64(memLB), sched.Utilization(t, s))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "treesched:", err)
	os.Exit(1)
}
