// Command treegen generates tree-shaped task graphs in the textual format
// consumed by cmd/treesched: random families, the paper's complexity
// gadgets, and assembly trees synthesized from sparse-matrix patterns.
// With -forest it instead emits an NDJSON job trace (trees plus arrival
// times, weights and widths) for the forest scheduler (`treesched
// -forest`, the daemon's /v1/forest endpoint, `treebench -suite forest`).
//
// Usage examples:
//
//	treegen -kind attachment -n 1000 -seed 7 -fmax 100 > tree.txt
//	treegen -kind grid2d -nx 30 -ny 30 -order nd -eta 4 > assembly.txt
//	treegen -kind joinchain -p 4 -k 20 > fig4.txt
//	treegen -forest -jobs 200 -arrivals poisson -rate 0.05 -seed 7 > trace.ndjson
//	treegen -forest -jobs 100 -arrivals bursty -burst 10 -dataset -objective weighted:0.5 > trace.ndjson
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"treesched/internal/forest"
	"treesched/internal/pebble"
	"treesched/internal/spm"
	"treesched/internal/tree"
)

func main() {
	var (
		kind = flag.String("kind", "attachment", "tree family: attachment|prufer|binary|chain|fork|caterpillar|grid2d|grid3d|randsym|powerlaw|band|forkgadget|joinchain|spider|inapprox")
		n    = flag.Int("n", 100, "number of nodes (random families) or vertices (matrices)")
		seed = flag.Int64("seed", 1, "random seed")
		out  = flag.String("out", "", "output file (default stdout)")

		wmin = flag.Float64("wmin", 1, "min processing time")
		wmax = flag.Float64("wmax", 1, "max processing time")
		nmin = flag.Int64("nmin", 0, "min execution-file size")
		nmax = flag.Int64("nmax", 0, "max execution-file size")
		fmin = flag.Int64("fmin", 1, "min output-file size")
		fmax = flag.Int64("fmax", 1, "max output-file size")

		nx  = flag.Int("nx", 20, "grid x dimension")
		ny  = flag.Int("ny", 20, "grid y dimension")
		nz  = flag.Int("nz", 8, "grid z dimension")
		deg = flag.Float64("deg", 3, "average degree (randsym)")
		m   = flag.Int("m", 2, "attachment edges (powerlaw)")
		bw  = flag.Int("bw", 3, "bandwidth (band)")

		order = flag.String("order", "nd", "matrix ordering: natural|nd|md|rcm")
		eta   = flag.Int("eta", 1, "relaxed amalgamation parameter")

		p     = flag.Int("p", 4, "gadget parameter p")
		k     = flag.Int("k", 10, "gadget parameter k / number of chains")
		delta = flag.Int("delta", 6, "inapprox gadget δ")
		spine = flag.Int("spine", 10, "caterpillar spine length")
		legs  = flag.Int("legs", 4, "caterpillar legs per spine node")

		forestMode = flag.Bool("forest", false, "emit an NDJSON forest job trace instead of a single tree")
		jobs       = flag.Int("jobs", 100, "forest: number of trace jobs")
		arrivals   = flag.String("arrivals", "poisson", "forest: arrival process: poisson|bursty")
		rate       = flag.Float64("rate", 0.05, "forest: mean job arrivals per unit time")
		burst      = flag.Int("burst", 8, "forest: jobs per burst (bursty arrivals)")
		minNodes   = flag.Int("minnodes", 50, "forest: min tree size per job")
		maxNodes   = flag.Int("maxnodes", 400, "forest: max tree size per job")
		objective  = flag.String("objective", "", "forest: objective stamped on every job (portfolio-plans each job)")
		useDataset = flag.Bool("dataset", false, "forest: mix in quick-scale assembly trees from the evaluation dataset")
	)
	flag.Parse()

	if *forestMode {
		trace, err := forest.GenTrace(forest.GenConfig{
			Jobs:      *jobs,
			Seed:      *seed,
			Arrivals:  *arrivals,
			Rate:      *rate,
			Burst:     *burst,
			MinNodes:  *minNodes,
			MaxNodes:  *maxNodes,
			Objective: *objective,
			Dataset:   *useDataset,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "treegen:", err)
			os.Exit(1)
		}
		if err := writeOut(*out, func(w io.Writer) error { return forest.EncodeTrace(w, trace) }); err != nil {
			fmt.Fprintln(os.Stderr, "treegen:", err)
			os.Exit(1)
		}
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	ws := tree.WeightSpec{WMin: *wmin, WMax: *wmax, NMin: *nmin, NMax: *nmax, FMin: *fmin, FMax: *fmax}

	t, err := build(*kind, rng, ws, buildParams{
		n: *n, nx: *nx, ny: *ny, nz: *nz, deg: *deg, m: *m, bw: *bw,
		order: *order, eta: *eta, p: *p, k: *k, delta: *delta, spine: *spine, legs: *legs,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "treegen:", err)
		os.Exit(1)
	}

	if err := writeOut(*out, t.Encode); err != nil {
		fmt.Fprintln(os.Stderr, "treegen:", err)
		os.Exit(1)
	}
}

// writeOut streams write to the -out file, or stdout when empty.
func writeOut(path string, write func(io.Writer) error) error {
	if path == "" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

type buildParams struct {
	n, nx, ny, nz, m, bw, eta, p, k, delta, spine, legs int
	deg                                                 float64
	order                                               string
}

func build(kind string, rng *rand.Rand, ws tree.WeightSpec, bp buildParams) (*tree.Tree, error) {
	matrix := func(pat *spm.Pattern) (*tree.Tree, error) {
		var perm spm.Perm
		switch bp.order {
		case "natural":
			perm = spm.NaturalOrder(pat.Len())
		case "nd":
			perm = spm.NestedDissection(pat)
		case "md":
			perm = spm.MinimumDegree(pat)
		case "rcm":
			perm = spm.RCM(pat)
		default:
			return nil, fmt.Errorf("unknown ordering %q", bp.order)
		}
		return spm.AssemblyTree(pat, perm, bp.eta)
	}
	switch kind {
	case "attachment":
		return tree.RandomAttachment(rng, bp.n, ws), nil
	case "prufer":
		return tree.RandomPrufer(rng, bp.n, ws), nil
	case "binary":
		return tree.RandomBinary(rng, bp.n, ws), nil
	case "chain":
		return tree.Chain(rng, bp.n, ws), nil
	case "fork":
		return tree.Fork(rng, bp.n, ws), nil
	case "caterpillar":
		return tree.Caterpillar(rng, bp.spine, bp.legs, ws), nil
	case "grid2d":
		return matrix(spm.Grid2D(bp.nx, bp.ny))
	case "grid3d":
		return matrix(spm.Grid3D(bp.nx, bp.ny, bp.nz))
	case "randsym":
		return matrix(spm.RandomSym(rng, bp.n, bp.deg))
	case "powerlaw":
		return matrix(spm.PowerLaw(rng, bp.n, bp.m))
	case "band":
		return matrix(spm.Band(bp.n, bp.bw))
	case "forkgadget":
		return pebble.ForkTree(bp.p, bp.k), nil
	case "joinchain":
		return pebble.JoinChainTree(bp.p, bp.k), nil
	case "spider":
		return pebble.SpiderTree(bp.k, 4), nil
	case "inapprox":
		g, err := pebble.NewInapprox(bp.n, bp.delta)
		if err != nil {
			return nil, err
		}
		return g.Tree, nil
	}
	return nil, fmt.Errorf("unknown kind %q", kind)
}
